//! Shared machinery of the cut-based mappers: mapping objectives and
//! choice-aware cut preparation (Algorithm 3, lines 1–8).
//!
//! The other half of what the mappers share — the covering dynamic program
//! itself (delay pass, required times, memoised area recovery) — lives in
//! [`crate::engine`]; this module ends where prepared cut sets are handed to
//! a [`crate::engine::CoverProblem`].

use mch_choice::ChoiceNetwork;
use mch_cut::{
    enumerate_cuts_threaded, level_parallel, Cut, CutCost, CutCostModel, CutParams, NetworkCuts,
    MAX_CUT_SIZE,
};
use mch_logic::{NodeId, TruthTable};

/// What the mapper optimises for.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum MappingObjective {
    /// Minimise the critical-path delay; recover area only where slack-free.
    Delay,
    /// Meet the best achievable delay, then minimise area within it.
    #[default]
    Balanced,
    /// Minimise area, ignoring timing.
    Area,
}

impl MappingObjective {
    /// The cut ranking that matches this objective: depth-first for
    /// [`Delay`](MappingObjective::Delay), area-first for
    /// [`Area`](MappingObjective::Area) and the hybrid blend for
    /// [`Balanced`](MappingObjective::Balanced).
    pub fn default_ranking(self) -> CutCost {
        match self {
            MappingObjective::Delay => CutCost::Depth,
            MappingObjective::Balanced => CutCost::Hybrid,
            MappingObjective::Area => CutCost::Area,
        }
    }
}

/// Remaps a cut inherited from a choice node onto representative-level leaves.
///
/// Every leaf is replaced by its representative (flipping the corresponding
/// truth-table variable when the choice phase is complemented); leaves without
/// a representative that are not part of the original structure make the cut
/// unusable and `None` is returned. Duplicate leaves after remapping are
/// merged by identifying the corresponding variables.
///
/// The whole remap runs on stack buffers: leaves resolve into fixed
/// `[NodeId; 8]` arrays and the common no-duplicates case rebuilds the
/// function with [`TruthTable::remap_vars`] (the single-word mask-doubling
/// stretch for `<= 6` leaves) plus one [`TruthTable::flip_var`] per
/// complemented leaf — no per-cut heap allocation, unlike the original
/// `Vec`-collecting implementation this replaced.
pub(crate) fn remap_choice_cut(
    cut: &Cut,
    choice: &ChoiceNetwork,
    repr: NodeId,
    phase: bool,
) -> Option<Cut> {
    let size = cut.size();
    // Resolve each leaf to (representative node, leaf phase); every resolved
    // leaf must precede the representative topologically.
    let mut nodes = [NodeId::CONST0; MAX_CUT_SIZE];
    let mut phases = [false; MAX_CUT_SIZE];
    for (i, &leaf) in cut.leaves().iter().enumerate() {
        if choice.is_original(leaf) {
            nodes[i] = leaf;
        } else if let Some((r, p)) = choice.repr_of(leaf) {
            nodes[i] = r;
            phases[i] = p;
        } else {
            return None;
        }
        if nodes[i].index() >= repr.index() {
            return None;
        }
    }
    // Unique, sorted leaf list built by insertion into a stack array.
    let mut unique = [NodeId::CONST0; MAX_CUT_SIZE];
    let mut ulen = 0usize;
    for &l in &nodes[..size] {
        let mut pos = 0;
        while pos < ulen && unique[pos] < l {
            pos += 1;
        }
        if pos < ulen && unique[pos] == l {
            continue;
        }
        for j in (pos..ulen).rev() {
            unique[j + 1] = unique[j];
        }
        unique[pos] = l;
        ulen += 1;
    }
    // Rebuild the function over the unique leaves.
    let mut placement = [0usize; MAX_CUT_SIZE];
    for i in 0..size {
        placement[i] = unique[..ulen]
            .binary_search(&nodes[i])
            .expect("leaf present");
    }
    let mut function = if ulen == size {
        // No duplicates: the placement is a plain variable re-placement, so
        // the stretch fast path applies; complemented leaves are single
        // variable flips afterwards.
        let mut f = cut.function().remap_vars(ulen, &placement[..size]);
        for i in 0..size {
            if phases[i] {
                f = f.flip_var(placement[i]);
            }
        }
        f
    } else {
        // Two original leaves resolved to the same representative: identify
        // the corresponding variables minterm by minterm (rare slow path).
        let mut f = TruthTable::zeros(ulen);
        for m in 0..f.num_bits() {
            let mut old_index = 0usize;
            for i in 0..size {
                let mut v = (m >> placement[i]) & 1 == 1;
                if phases[i] {
                    v = !v;
                }
                if v {
                    old_index |= 1 << i;
                }
            }
            f.set_bit(m, cut.function().bit(old_index));
        }
        f
    };
    if phase {
        function = function.not();
    }
    Some(Cut::new(repr, &unique[..ulen], function))
}

/// Enumerates cuts over the mixed network and transfers every choice node's
/// cuts to its representative (Algorithm 3, lines 1–8).
///
/// Cuts are ranked by `cost` — both inside enumeration (which cuts survive
/// the per-node `cut_limit`) and when the inherited choice cuts are merged
/// into a representative's set. Inherited cuts get fresh [`mch_cut::CutCosts`]
/// computed over representative-level leaves so they compete with structural
/// cuts on equal terms.
///
/// Both phases shard by topological level across `threads` workers:
/// enumeration through [`mch_cut::enumerate_cuts_threaded`], and the choice
/// transfer by splitting [`NetworkCuts::extend_node`] into its read-only
/// ranking half (remap + re-cost + re-rank, run on the workers, one level of
/// representatives at a time) and its committing half (applied by the
/// coordinator in node-id order). Results are bit-identical for every thread
/// count — `threads <= 1` runs the same batched schedule inline.
///
/// The returned cut sets are indexed by node id of the mixed network; only
/// original (representative) nodes are intended to be mapped.
pub fn prepare_cuts(
    choice: &ChoiceNetwork,
    cut_size: usize,
    cut_limit: usize,
    cost: CutCost,
    model: &CutCostModel,
    threads: usize,
) -> NetworkCuts {
    let params = CutParams::new(cut_size, cut_limit).with_cost(cost);
    let net = choice.network();
    let cuts = enumerate_cuts_threaded(net, &params, model, threads);

    // Representatives that actually have choices, grouped by their level in
    // the mixed network: a representative's inherited-cut costs read the
    // node costs of leaves strictly below it, so — exactly as in enumeration
    // — all representatives of one level can be re-ranked independently once
    // every earlier level's extensions are committed.
    let mut repr_levels: Vec<Vec<NodeId>> = Vec::new();
    for repr in choice.representatives() {
        if choice.choices_of(repr).is_empty() {
            continue;
        }
        let level = net.level(repr) as usize;
        if repr_levels.len() <= level {
            repr_levels.resize_with(level + 1, Vec::new);
        }
        repr_levels[level].push(repr);
    }
    // `representatives()` iterates in ascending id order (the choice network
    // stores classes in id-sorted structures precisely so no consumer
    // depends on a hasher seed), so each level bucket is already sorted and
    // the sharding — and the arena layout the commits produce — is
    // reproducible run to run.
    debug_assert!(repr_levels
        .iter()
        .all(|bucket| bucket.windows(2).all(|w| w[0] < w[1])));

    let shared = std::sync::RwLock::new(cuts);
    level_parallel(
        &repr_levels,
        threads,
        MIN_TRANSFER_SHARD,
        Vec::<Cut>::new,
        |inherited: &mut Vec<Cut>, shard: &[NodeId]| {
            let cuts = shared
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut extensions: Vec<(NodeId, Vec<Cut>)> = Vec::with_capacity(shard.len());
            for &repr in shard {
                inherited.clear();
                for &(choice_node, phase) in choice.choices_of(repr) {
                    for cut in cuts.of(choice_node).iter() {
                        if cut.size() > cut_size {
                            continue;
                        }
                        if let Some(mut remapped) = remap_choice_cut(cut, choice, repr, phase) {
                            if remapped.size() <= cut_size && !remapped.is_trivial() {
                                remapped.set_costs(cuts.leaf_costs(remapped.leaves()));
                                inherited.push(remapped);
                            }
                        }
                    }
                }
                // Keep the set bounded (the paper's line 8) while retaining
                // room for both structural and inherited cuts.
                if let Some(ranked) =
                    cuts.ranked_extension(repr, inherited, cut_limit * 2, cost)
                {
                    extensions.push((repr, ranked));
                }
            }
            extensions
        },
        |level_extensions: Vec<Vec<(NodeId, Vec<Cut>)>>| {
            let mut cuts = shared
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (repr, ranked) in level_extensions.into_iter().flatten() {
                cuts.commit_extension(repr, ranked);
            }
        },
    );
    shared
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Smallest representative batch worth sharding during choice transfer;
/// remapping is heavier per node than enumeration, so the threshold is lower
/// than the enumeration one.
const MIN_TRANSFER_SHARD: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::{build_mch, MchParams};
    use mch_cut::enumerate_cuts_with_model;
    use mch_logic::{Network, NetworkKind};

    fn sample() -> Network {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(6);
        let a = n.xor(xs[0], xs[1]);
        let b = n.xor(xs[2], xs[3]);
        let c = n.and(a, b);
        let d = n.or(c, xs[4]);
        let e = n.and(d, xs[5]);
        n.add_output(e);
        n
    }

    /// The original `Vec`-based remap implementation, kept verbatim as the
    /// reference semantics for the stack-buffer port.
    fn remap_choice_cut_reference(
        cut: &Cut,
        choice: &ChoiceNetwork,
        repr: NodeId,
        phase: bool,
    ) -> Option<Cut> {
        let mut resolved: Vec<(NodeId, bool)> = Vec::with_capacity(cut.size());
        for &leaf in cut.leaves() {
            if choice.is_original(leaf) {
                resolved.push((leaf, false));
            } else if let Some((r, p)) = choice.repr_of(leaf) {
                resolved.push((r, p));
            } else {
                return None;
            }
        }
        if resolved.iter().any(|&(l, _)| l.index() >= repr.index()) {
            return None;
        }
        let mut unique: Vec<NodeId> = resolved.iter().map(|&(l, _)| l).collect();
        unique.sort();
        unique.dedup();
        if unique.len() > 8 {
            return None;
        }
        let mut function = TruthTable::zeros(unique.len());
        for m in 0..function.num_bits() {
            let mut old_index = 0usize;
            for (i, &(l, p)) in resolved.iter().enumerate() {
                let pos = unique.binary_search(&l).expect("leaf present");
                let mut v = (m >> pos) & 1 == 1;
                if p {
                    v = !v;
                }
                if v {
                    old_index |= 1 << i;
                }
            }
            function.set_bit(m, cut.function().bit(old_index));
        }
        if phase {
            function = function.not();
        }
        Some(Cut::new(repr, &unique, function))
    }

    #[test]
    fn compaction_after_transfer_preserves_cut_lists_and_netlists() {
        // Regression (PR 9): choice transfer leaves `commit_extension` waste
        // in the arena, and no flow reclaimed it before covering. `compact`
        // must preserve every node's cut list byte-for-byte — and therefore
        // the mapped netlists — while dropping the waste to zero.
        let mut net = Network::with_name(NetworkKind::Aig, "adder8");
        let a = net.add_inputs(8);
        let b = net.add_inputs(8);
        let mut carry = net.constant(false);
        for i in 0..8 {
            let (s, c) = net.full_adder(a[i], b[i], carry);
            net.add_output(s);
            carry = c;
        }
        net.add_output(carry);
        let mch = build_mch(&net, &MchParams::area_oriented());
        let wasteful = prepare_cuts(&mch, 4, 8, CutCost::Hybrid, &CutCostModel::unit(), 1);
        assert!(
            wasteful.wasted_slots() > 0,
            "adder8 no longer produces transfer waste; pick a choicier network"
        );
        let mut compacted = wasteful.clone();
        let reclaimed = compacted.compact();
        assert_eq!(reclaimed, wasteful.wasted_slots());
        assert_eq!(compacted.wasted_slots(), 0);
        for id in mch.network().node_ids() {
            let (a, b) = (wasteful.of(id), compacted.of(id));
            assert_eq!(a.len(), b.len(), "cut count changed at {id}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.leaves(), y.leaves(), "leaves changed at {id}");
                assert_eq!(x.function(), y.function(), "function changed at {id}");
                assert_eq!(
                    x.costs().arrival,
                    y.costs().arrival,
                    "arrival changed at {id}"
                );
                assert_eq!(
                    x.costs().flow.to_bits(),
                    y.costs().flow.to_bits(),
                    "flow changed at {id}"
                );
            }
        }
        let lut = mch_techlib::LutLibrary::k4();
        let params = crate::lut::LutMapParams::default();
        assert_eq!(
            crate::lut::map_lut_with_cuts(&mch, &lut, &wasteful, &params),
            crate::lut::map_lut_with_cuts(&mch, &lut, &compacted, &params),
            "compaction changed the mapped netlist"
        );
    }

    #[test]
    fn objective_default_is_balanced() {
        assert_eq!(MappingObjective::default(), MappingObjective::Balanced);
    }

    #[test]
    fn objective_rankings() {
        assert_eq!(MappingObjective::Delay.default_ranking(), CutCost::Depth);
        assert_eq!(MappingObjective::Balanced.default_ranking(), CutCost::Hybrid);
        assert_eq!(MappingObjective::Area.default_ranking(), CutCost::Area);
    }

    #[test]
    fn prepared_cuts_contain_inherited_cuts() {
        let net = sample();
        let mch = build_mch(&net, &MchParams::area_oriented());
        let plain = prepare_cuts(&ChoiceNetwork::from_network(&net), 4, 8, CutCost::Structural, &CutCostModel::unit(), 1);
        let with_choices = prepare_cuts(&mch, 4, 8, CutCost::Structural, &CutCostModel::unit(), 1);
        // Total cuts on representative nodes should not shrink when choices
        // are transferred.
        let plain_total: usize = net.gate_ids().map(|id| plain.of(id).len()).sum();
        let choice_total: usize = net.gate_ids().map(|id| with_choices.of(id).len()).sum();
        assert!(choice_total >= plain_total);
    }

    #[test]
    fn inherited_cut_functions_are_correct() {
        let net = sample();
        let mch = build_mch(&net, &MchParams::area_oriented());
        let cuts = prepare_cuts(&mch, 4, 8, CutCost::Hybrid, &CutCostModel::unit(), 1);
        // For every representative cut rooted at an output driver, check the
        // function against a direct cone evaluation through simulation of the
        // original network restricted to the cut leaves: here we simply verify
        // that cuts over identical leaf sets agree on their function.
        for id in net.gate_ids() {
            let set = cuts.of(id);
            for a in set.iter() {
                for b in set.iter() {
                    if a.leaves() == b.leaves() {
                        assert_eq!(
                            a.function(),
                            b.function(),
                            "conflicting cut functions at node {id}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn leafbuf_remap_matches_vec_reference() {
        // Every (choice cut, representative, phase) combination the transfer
        // path would attempt must produce exactly the old Vec-based result.
        for params in [MchParams::area_oriented(), MchParams::delay_oriented()] {
            let net = sample();
            let mch = build_mch(&net, &params);
            let cuts = enumerate_cuts_with_model(mch.network(), &CutParams::new(4, 8), &CutCostModel::unit());
            let mut checked = 0usize;
            for repr in mch.representatives() {
                for &(choice_node, phase) in mch.choices_of(repr) {
                    for cut in cuts.of(choice_node).iter() {
                        let fast = remap_choice_cut(cut, &mch, repr, phase);
                        let slow = remap_choice_cut_reference(cut, &mch, repr, phase);
                        match (&fast, &slow) {
                            (None, None) => {}
                            (Some(f), Some(s)) => {
                                assert_eq!(f.root(), s.root(), "root for {cut}");
                                assert_eq!(f.leaves(), s.leaves(), "leaves for {cut}");
                                assert_eq!(f.function(), s.function(), "function for {cut}");
                                checked += 1;
                            }
                            _ => panic!("fast/slow disagree on feasibility of {cut}"),
                        }
                    }
                }
            }
            assert!(checked > 0, "no choice cut was actually remapped");
        }
    }

    #[test]
    fn remap_identifies_duplicate_leaves() {
        // Force the duplicate-leaf slow path: a cut whose two leaves resolve
        // to the same representative must collapse onto one variable, exactly
        // as the Vec-based reference did.
        let mut net = Network::new(NetworkKind::Aig);
        let a = net.add_input();
        let b = net.add_input();
        let c = net.add_input();
        let g1 = net.and2(a, b);
        let h = net.and2(g1, c);
        net.add_output(h);
        let mut choice = ChoiceNetwork::from_network(&net);
        // d1 duplicates g1 structurally (a & (a & b)); e's cut {g1, d1}
        // resolves both leaves onto g1.
        let (d1, e) = {
            let n = choice.network_mut();
            let ab = n.and2(a, b); // structural hash resolves onto g1
            let d1 = n.and2(a, ab);
            let e = n.and2(g1, d1);
            (d1, e)
        };
        assert!(choice.add_choice(g1.node(), d1));
        assert!(choice.add_choice(h.node(), e));
        let cuts = enumerate_cuts_with_model(choice.network(), &CutParams::new(4, 8), &CutCostModel::unit());
        let mut duplicate_seen = false;
        for repr in choice.representatives() {
            for &(choice_node, phase) in choice.choices_of(repr) {
                for cut in cuts.of(choice_node).iter() {
                    let fast = remap_choice_cut(cut, &choice, repr, phase);
                    let slow = remap_choice_cut_reference(cut, &choice, repr, phase);
                    if let Some(f) = &fast {
                        duplicate_seen |= f.size() < cut.size();
                    }
                    assert_eq!(
                        fast.as_ref().map(|c| (c.leaves().to_vec(), c.function().clone())),
                        slow.as_ref().map(|c| (c.leaves().to_vec(), c.function().clone())),
                        "mismatch for {cut}"
                    );
                }
            }
        }
        assert!(duplicate_seen, "no cut exercised the duplicate-leaf path");
    }
}
