//! Shared machinery of the cut-based mappers: mapping objectives and
//! choice-aware cut preparation (Algorithm 3, lines 1–8).

use mch_choice::ChoiceNetwork;
use mch_cut::{enumerate_cuts, Cut, CutParams, NetworkCuts};
use mch_logic::{NodeId, TruthTable};

/// What the mapper optimises for.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum MappingObjective {
    /// Minimise the critical-path delay; recover area only where slack-free.
    Delay,
    /// Meet the best achievable delay, then minimise area within it.
    #[default]
    Balanced,
    /// Minimise area, ignoring timing.
    Area,
}

/// Remaps a cut inherited from a choice node onto representative-level leaves.
///
/// Every leaf is replaced by its representative (flipping the corresponding
/// truth-table variable when the choice phase is complemented); leaves without
/// a representative that are not part of the original structure make the cut
/// unusable and `None` is returned. Duplicate leaves after remapping are
/// merged by identifying the corresponding variables.
pub(crate) fn remap_choice_cut(
    cut: &Cut,
    choice: &ChoiceNetwork,
    repr: NodeId,
    phase: bool,
) -> Option<Cut> {
    // Resolve each leaf to (representative node, leaf phase).
    let mut resolved: Vec<(NodeId, bool)> = Vec::with_capacity(cut.size());
    for &leaf in cut.leaves() {
        if choice.is_original(leaf) {
            resolved.push((leaf, false));
        } else if let Some((r, p)) = choice.repr_of(leaf) {
            resolved.push((r, p));
        } else {
            return None;
        }
    }
    // All remapped leaves must precede the representative topologically.
    if resolved.iter().any(|&(l, _)| l.index() >= repr.index()) {
        return None;
    }
    // Unique, sorted leaf list.
    let mut unique: Vec<NodeId> = resolved.iter().map(|&(l, _)| l).collect();
    unique.sort();
    unique.dedup();
    if unique.len() > 8 {
        return None;
    }
    // Rebuild the function over the unique leaves.
    let mut function = TruthTable::zeros(unique.len());
    for m in 0..function.num_bits() {
        // Value of each original cut variable under this minterm.
        let mut old_index = 0usize;
        for (i, &(l, p)) in resolved.iter().enumerate() {
            let pos = unique.binary_search(&l).expect("leaf present");
            let mut v = (m >> pos) & 1 == 1;
            if p {
                v = !v;
            }
            if v {
                old_index |= 1 << i;
            }
        }
        function.set_bit(m, cut.function().bit(old_index));
    }
    if phase {
        function = function.not();
    }
    Some(Cut::new(repr, &unique, function))
}

/// Enumerates cuts over the mixed network and transfers every choice node's
/// cuts to its representative (Algorithm 3, lines 1–8).
///
/// The returned cut sets are indexed by node id of the mixed network; only
/// original (representative) nodes are intended to be mapped.
pub(crate) fn prepare_cuts(
    choice: &ChoiceNetwork,
    cut_size: usize,
    cut_limit: usize,
) -> NetworkCuts {
    let params = CutParams::new(cut_size, cut_limit);
    let mut cuts = enumerate_cuts(choice.network(), &params);
    let reprs: Vec<NodeId> = choice.representatives().collect();
    for repr in reprs {
        let mut inherited: Vec<Cut> = Vec::new();
        for &(choice_node, phase) in choice.choices_of(repr) {
            for cut in cuts.of(choice_node).iter() {
                if cut.size() > cut_size {
                    continue;
                }
                if let Some(remapped) = remap_choice_cut(cut, choice, repr, phase) {
                    if remapped.size() <= cut_size && !remapped.is_trivial() {
                        inherited.push(remapped);
                    }
                }
            }
        }
        if inherited.is_empty() {
            continue;
        }
        let set = cuts.of_mut(repr);
        for cut in inherited {
            set.push_unchecked(cut);
        }
        // Keep the set bounded (the paper's line 8) while retaining room for
        // both structural and inherited cuts.
        set.prioritize_default(cut_limit * 2);
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::{build_mch, MchParams};
    use mch_logic::{Network, NetworkKind};

    fn sample() -> Network {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(6);
        let a = n.xor(xs[0], xs[1]);
        let b = n.xor(xs[2], xs[3]);
        let c = n.and(a, b);
        let d = n.or(c, xs[4]);
        let e = n.and(d, xs[5]);
        n.add_output(e);
        n
    }

    #[test]
    fn objective_default_is_balanced() {
        assert_eq!(MappingObjective::default(), MappingObjective::Balanced);
    }

    #[test]
    fn prepared_cuts_contain_inherited_cuts() {
        let net = sample();
        let mch = build_mch(&net, &MchParams::area_oriented());
        let plain = prepare_cuts(&ChoiceNetwork::from_network(&net), 4, 8);
        let with_choices = prepare_cuts(&mch, 4, 8);
        // Total cuts on representative nodes should not shrink when choices
        // are transferred.
        let plain_total: usize = net.gate_ids().map(|id| plain.of(id).len()).sum();
        let choice_total: usize = net.gate_ids().map(|id| with_choices.of(id).len()).sum();
        assert!(choice_total >= plain_total);
    }

    #[test]
    fn inherited_cut_functions_are_correct() {
        let net = sample();
        let mch = build_mch(&net, &MchParams::area_oriented());
        let cuts = prepare_cuts(&mch, 4, 8);
        // For every representative cut rooted at an output driver, check the
        // function against a direct cone evaluation through simulation of the
        // original network restricted to the cut leaves: here we simply verify
        // that cuts over identical leaf sets agree on their function.
        for id in net.gate_ids() {
            let set = cuts.of(id);
            for a in set.iter() {
                for b in set.iter() {
                    if a.leaves() == b.leaves() {
                        assert_eq!(
                            a.function(),
                            b.function(),
                            "conflicting cut functions at node {id}"
                        );
                    }
                }
            }
        }
    }
}
