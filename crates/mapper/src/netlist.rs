//! Mapped-netlist data structures: standard-cell netlists (ASIC) and K-LUT
//! netlists (FPGA), with area/delay reporting and export back to a logic
//! network for verification.

use mch_choice::emit_decomposed;
use mch_logic::{Network, NetworkKind, Signal, TruthTable};
use mch_techlib::{CellId, Library};
use std::fmt;

/// Reference to a driver inside a mapped netlist.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NetRef {
    /// A constant value.
    Const(bool),
    /// The `i`-th primary input.
    Input(usize),
    /// The output of the `i`-th mapped gate/LUT.
    Gate(usize),
}

/// One instantiated standard cell.
#[derive(Clone, PartialEq, Debug)]
pub struct MappedCell {
    /// Which library cell is instantiated.
    pub cell: CellId,
    /// Drivers of the cell's input pins, in pin order.
    pub fanins: Vec<NetRef>,
}

/// A standard-cell netlist produced by ASIC mapping.
///
/// Equality is structural (same cells, pins and outputs in the same order) —
/// the parallel-mapping determinism tests rely on it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CellNetlist {
    name: String,
    inputs: usize,
    gates: Vec<MappedCell>,
    outputs: Vec<NetRef>,
}

impl CellNetlist {
    /// Creates an empty netlist with the given number of primary inputs.
    pub fn new(name: impl Into<String>, inputs: usize) -> Self {
        CellNetlist {
            name: name.into(),
            inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The mapped gates, in topological order.
    pub fn gates(&self) -> &[MappedCell] {
        &self.gates
    }

    /// Number of mapped gates (including inverters/buffers).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[NetRef] {
        &self.outputs
    }

    /// Appends a gate and returns its reference.
    ///
    /// # Panics
    ///
    /// Panics if a fanin references a gate that does not exist yet (the
    /// netlist is built in topological order).
    pub fn push_gate(&mut self, cell: CellId, fanins: Vec<NetRef>) -> NetRef {
        for f in &fanins {
            if let NetRef::Gate(i) = f {
                assert!(*i < self.gates.len(), "fanin must precede the gate");
            }
        }
        self.gates.push(MappedCell { cell, fanins });
        NetRef::Gate(self.gates.len() - 1)
    }

    /// Declares a primary output.
    pub fn push_output(&mut self, driver: NetRef) {
        self.outputs.push(driver);
    }

    /// Total cell area in µm².
    pub fn area(&self, library: &Library) -> f64 {
        self.gates.iter().map(|g| library.cell(g.cell).area()).sum()
    }

    /// Critical-path delay in ps under the per-cell pin-to-output model.
    pub fn delay(&self, library: &Library) -> f64 {
        let arrivals = self.arrival_times(library);
        self.outputs
            .iter()
            .map(|o| match o {
                NetRef::Gate(i) => arrivals[*i],
                _ => 0.0,
            })
            .fold(0.0, f64::max)
    }

    /// Arrival time of every gate output.
    pub fn arrival_times(&self, library: &Library) -> Vec<f64> {
        let mut arrivals = vec![0.0f64; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let input_arrival = g
                .fanins
                .iter()
                .map(|f| match f {
                    NetRef::Gate(j) => arrivals[*j],
                    _ => 0.0,
                })
                .fold(0.0, f64::max);
            arrivals[i] = input_arrival + library.cell(g.cell).delay();
        }
        arrivals
    }

    /// Logic depth in cell levels.
    pub fn level_count(&self) -> u32 {
        let mut levels = vec![0u32; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            levels[i] = 1 + g
                .fanins
                .iter()
                .map(|f| match f {
                    NetRef::Gate(j) => levels[*j],
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
        }
        self.outputs
            .iter()
            .map(|o| match o {
                NetRef::Gate(i) => levels[*i],
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Rebuilds a logic network implementing the netlist, for equivalence
    /// checking against the pre-mapping network.
    pub fn to_network(&self, library: &Library) -> Network {
        let mut net = Network::with_name(NetworkKind::Mixed, self.name.clone());
        let pis = net.add_inputs(self.inputs);
        let mut signals: Vec<Signal> = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let leaves: Vec<Signal> = g
                .fanins
                .iter()
                .map(|f| resolve(f, &pis, &signals, &net))
                .collect();
            let function = library.cell(g.cell).function().clone();
            let out = emit_decomposed(&mut net, &function, &leaves);
            signals.push(out);
        }
        for o in &self.outputs {
            let s = resolve(o, &pis, &signals, &net);
            net.add_output(s);
        }
        net
    }
}

fn resolve(r: &NetRef, pis: &[Signal], gates: &[Signal], net: &Network) -> Signal {
    match r {
        NetRef::Const(v) => net.constant(*v),
        NetRef::Input(i) => pis[*i],
        NetRef::Gate(i) => gates[*i],
    }
}

impl fmt::Display for CellNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell netlist '{}': {} gates, {} inputs, {} outputs",
            self.name,
            self.gates.len(),
            self.inputs,
            self.outputs.len()
        )
    }
}

/// One K-input lookup table.
#[derive(Clone, PartialEq, Debug)]
pub struct MappedLut {
    /// The LUT's function over its fanins.
    pub function: TruthTable,
    /// Drivers of the LUT inputs (variable `i` of the function reads fanin `i`).
    pub fanins: Vec<NetRef>,
}

/// A K-LUT netlist produced by FPGA mapping.
///
/// Equality is structural (same LUT masks, fanins and outputs in the same
/// order) — the parallel-mapping determinism tests rely on it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LutNetlist {
    name: String,
    inputs: usize,
    luts: Vec<MappedLut>,
    outputs: Vec<NetRef>,
}

impl LutNetlist {
    /// Creates an empty LUT netlist with the given number of primary inputs.
    pub fn new(name: impl Into<String>, inputs: usize) -> Self {
        LutNetlist {
            name: name.into(),
            inputs,
            luts: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// The LUTs, in topological order.
    pub fn luts(&self) -> &[MappedLut] {
        &self.luts
    }

    /// Number of LUTs (the EPFL challenge metric).
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[NetRef] {
        &self.outputs
    }

    /// Appends a LUT and returns its reference.
    ///
    /// # Panics
    ///
    /// Panics if a fanin references a LUT that does not exist yet.
    pub fn push_lut(&mut self, function: TruthTable, fanins: Vec<NetRef>) -> NetRef {
        assert_eq!(function.num_vars(), fanins.len(), "one fanin per LUT variable");
        for f in &fanins {
            if let NetRef::Gate(i) = f {
                assert!(*i < self.luts.len(), "fanin must precede the LUT");
            }
        }
        self.luts.push(MappedLut { function, fanins });
        NetRef::Gate(self.luts.len() - 1)
    }

    /// Declares a primary output.
    pub fn push_output(&mut self, driver: NetRef) {
        self.outputs.push(driver);
    }

    /// Logic depth in LUT levels (the EPFL challenge's second metric).
    pub fn level_count(&self) -> u32 {
        let mut levels = vec![0u32; self.luts.len()];
        for (i, l) in self.luts.iter().enumerate() {
            levels[i] = 1 + l
                .fanins
                .iter()
                .map(|f| match f {
                    NetRef::Gate(j) => levels[*j],
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
        }
        self.outputs
            .iter()
            .map(|o| match o {
                NetRef::Gate(i) => levels[*i],
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Rebuilds a logic network implementing the netlist, for equivalence
    /// checking against the pre-mapping network.
    pub fn to_network(&self) -> Network {
        let mut net = Network::with_name(NetworkKind::Mixed, self.name.clone());
        let pis = net.add_inputs(self.inputs);
        let mut signals: Vec<Signal> = Vec::with_capacity(self.luts.len());
        for l in &self.luts {
            let leaves: Vec<Signal> = l
                .fanins
                .iter()
                .map(|f| resolve(f, &pis, &signals, &net))
                .collect();
            let out = emit_decomposed(&mut net, &l.function, &leaves);
            signals.push(out);
        }
        for o in &self.outputs {
            let s = resolve(o, &pis, &signals, &net);
            net.add_output(s);
        }
        net
    }
}

impl fmt::Display for LutNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT netlist '{}': {} LUTs, {} levels",
            self.name,
            self.lut_count(),
            self.level_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::cec;
    use mch_techlib::asap7_lite;

    #[test]
    fn cell_netlist_metrics() {
        let lib = asap7_lite();
        let nand = lib.find_cell("NAND2x1").unwrap();
        let inv = lib.inverter();
        let mut nl = CellNetlist::new("t", 2);
        let g0 = nl.push_gate(nand, vec![NetRef::Input(0), NetRef::Input(1)]);
        let g1 = nl.push_gate(inv, vec![g0]);
        nl.push_output(g1);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.level_count(), 2);
        let area = nl.area(&lib);
        assert!((area - (0.081 + 0.054)).abs() < 1e-9);
        let delay = nl.delay(&lib);
        assert!((delay - (15.0 + 12.0)).abs() < 1e-9);
    }

    #[test]
    fn cell_netlist_to_network_is_and() {
        let lib = asap7_lite();
        let nand = lib.find_cell("NAND2x1").unwrap();
        let inv = lib.inverter();
        let mut nl = CellNetlist::new("t", 2);
        let g0 = nl.push_gate(nand, vec![NetRef::Input(0), NetRef::Input(1)]);
        let g1 = nl.push_gate(inv, vec![g0]);
        nl.push_output(g1);
        let net = nl.to_network(&lib);
        let mut expect = Network::new(NetworkKind::Aig);
        let a = expect.add_input();
        let b = expect.add_input();
        let f = expect.and2(a, b);
        expect.add_output(f);
        assert!(cec(&net, &expect).holds());
    }

    #[test]
    fn lut_netlist_metrics_and_export() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let mut nl = LutNetlist::new("t", 3);
        let l0 = nl.push_lut(a.xor(&b), vec![NetRef::Input(0), NetRef::Input(1)]);
        let l1 = nl.push_lut(a.and(&b), vec![l0, NetRef::Input(2)]);
        nl.push_output(l1);
        assert_eq!(nl.lut_count(), 2);
        assert_eq!(nl.level_count(), 2);
        let net = nl.to_network();
        let mut expect = Network::new(NetworkKind::Xag);
        let xs = expect.add_inputs(3);
        let x = expect.xor2(xs[0], xs[1]);
        let f = expect.and2(x, xs[2]);
        expect.add_output(f);
        assert!(cec(&net, &expect).holds());
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn forward_references_are_rejected() {
        let mut nl = LutNetlist::new("t", 1);
        let _ = nl.push_lut(TruthTable::var(1, 0), vec![NetRef::Gate(3)]);
    }

    #[test]
    fn constant_outputs_are_allowed() {
        let lib = asap7_lite();
        let mut nl = CellNetlist::new("t", 0);
        nl.push_output(NetRef::Const(true));
        assert_eq!(nl.delay(&lib), 0.0);
        assert_eq!(nl.area(&lib), 0.0);
        let net = nl.to_network(&lib);
        assert_eq!(net.output_count(), 1);
    }
}
