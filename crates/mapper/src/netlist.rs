//! Mapped-netlist data structures: standard-cell netlists (ASIC) and K-LUT
//! netlists (FPGA), with area/delay reporting and export back to a logic
//! network for verification.

use mch_choice::emit_decomposed;
use mch_logic::{Network, NetworkKind, Signal, TruthTable};
use mch_techlib::{CellId, Library};
use std::fmt;

/// Word-parallel evaluation of a truth table: `inputs[i]` carries 64 stimulus
/// bits of variable `i`, the result carries the corresponding output bits.
/// Sum-of-minterms over the table's ON-set — fine for the ≤ 6-input functions
/// mapped netlists are built from.
fn eval_table(table: &TruthTable, inputs: &[u64]) -> u64 {
    debug_assert_eq!(table.num_vars(), inputs.len());
    let mut out = 0u64;
    for m in 0..table.num_bits() {
        if table.bit(m) {
            let mut term = !0u64;
            for (i, &w) in inputs.iter().enumerate() {
                term &= if (m >> i) & 1 == 1 { w } else { !w };
            }
            out |= term;
        }
    }
    out
}

fn resolve_word(r: &NetRef, patterns: &[Vec<u64>], gates: &[Vec<u64>], w: usize) -> u64 {
    match r {
        NetRef::Const(v) => {
            if *v {
                !0u64
            } else {
                0u64
            }
        }
        NetRef::Input(i) => patterns[*i][w],
        NetRef::Gate(i) => gates[*i][w],
    }
}

/// Reference to a driver inside a mapped netlist.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NetRef {
    /// A constant value.
    Const(bool),
    /// The `i`-th primary input.
    Input(usize),
    /// The output of the `i`-th mapped gate/LUT.
    Gate(usize),
}

/// One instantiated standard cell.
#[derive(Clone, PartialEq, Debug)]
pub struct MappedCell {
    /// Which library cell is instantiated.
    pub cell: CellId,
    /// Drivers of the cell's input pins, in pin order.
    pub fanins: Vec<NetRef>,
}

/// A standard-cell netlist produced by ASIC mapping.
///
/// Equality is structural (same cells, pins and outputs in the same order) —
/// the parallel-mapping determinism tests rely on it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CellNetlist {
    name: String,
    inputs: usize,
    gates: Vec<MappedCell>,
    outputs: Vec<NetRef>,
}

impl CellNetlist {
    /// Creates an empty netlist with the given number of primary inputs.
    pub fn new(name: impl Into<String>, inputs: usize) -> Self {
        CellNetlist {
            name: name.into(),
            inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The mapped gates, in topological order.
    pub fn gates(&self) -> &[MappedCell] {
        &self.gates
    }

    /// Number of mapped gates (including inverters/buffers).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[NetRef] {
        &self.outputs
    }

    /// Appends a gate and returns its reference.
    ///
    /// # Panics
    ///
    /// Panics if a fanin references a gate that does not exist yet (the
    /// netlist is built in topological order).
    pub fn push_gate(&mut self, cell: CellId, fanins: Vec<NetRef>) -> NetRef {
        for f in &fanins {
            if let NetRef::Gate(i) = f {
                assert!(*i < self.gates.len(), "fanin must precede the gate");
            }
        }
        self.gates.push(MappedCell { cell, fanins });
        NetRef::Gate(self.gates.len() - 1)
    }

    /// Declares a primary output.
    pub fn push_output(&mut self, driver: NetRef) {
        self.outputs.push(driver);
    }

    /// Total cell area in µm².
    pub fn area(&self, library: &Library) -> f64 {
        self.gates.iter().map(|g| library.cell(g.cell).area()).sum()
    }

    /// Critical-path delay in ps under the per-cell pin-to-output model.
    pub fn delay(&self, library: &Library) -> f64 {
        let arrivals = self.arrival_times(library);
        self.outputs
            .iter()
            .map(|o| match o {
                NetRef::Gate(i) => arrivals[*i],
                _ => 0.0,
            })
            .fold(0.0, f64::max)
    }

    /// Arrival time of every gate output.
    pub fn arrival_times(&self, library: &Library) -> Vec<f64> {
        let mut arrivals = vec![0.0f64; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let input_arrival = g
                .fanins
                .iter()
                .map(|f| match f {
                    NetRef::Gate(j) => arrivals[*j],
                    _ => 0.0,
                })
                .fold(0.0, f64::max);
            arrivals[i] = input_arrival + library.cell(g.cell).delay();
        }
        arrivals
    }

    /// Logic depth in cell levels.
    pub fn level_count(&self) -> u32 {
        let mut levels = vec![0u32; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            levels[i] = 1 + g
                .fanins
                .iter()
                .map(|f| match f {
                    NetRef::Gate(j) => levels[*j],
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
        }
        self.outputs
            .iter()
            .map(|o| match o {
                NetRef::Gate(i) => levels[*i],
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Rebuilds a logic network implementing the netlist, for equivalence
    /// checking against the pre-mapping network.
    pub fn to_network(&self, library: &Library) -> Network {
        let mut net = Network::with_name(NetworkKind::Mixed, self.name.clone());
        let pis = net.add_inputs(self.inputs);
        let mut signals: Vec<Signal> = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let leaves: Vec<Signal> = g
                .fanins
                .iter()
                .map(|f| resolve(f, &pis, &signals, &net))
                .collect();
            let function = library.cell(g.cell).function().clone();
            let out = emit_decomposed(&mut net, &function, &leaves);
            signals.push(out);
        }
        for o in &self.outputs {
            let s = resolve(o, &pis, &signals, &net);
            net.add_output(s);
        }
        net
    }

    /// Simulates the netlist on word-parallel input patterns.
    ///
    /// `patterns[i]` holds the stimulus words of primary input `i` (64
    /// patterns per word, matching [`mch_logic::simulate`]); cell functions
    /// are evaluated from the library's truth tables. Returns one vector of
    /// words per primary output, directly comparable against
    /// [`mch_logic::simulate`] of the pre-mapping network.
    ///
    /// # Panics
    ///
    /// Panics if the number of pattern rows differs from the input count or
    /// the rows have inconsistent lengths.
    pub fn simulate(&self, library: &Library, patterns: &[Vec<u64>]) -> Vec<Vec<u64>> {
        assert_eq!(patterns.len(), self.inputs, "one pattern row per input");
        let words = patterns.first().map_or(0, Vec::len);
        for row in patterns {
            assert_eq!(row.len(), words, "inconsistent pattern widths");
        }
        let mut values: Vec<Vec<u64>> = Vec::with_capacity(self.gates.len());
        let mut ins: Vec<u64> = Vec::new();
        for g in &self.gates {
            let function = library.cell(g.cell).function();
            let mut out = vec![0u64; words];
            for (w, slot) in out.iter_mut().enumerate() {
                ins.clear();
                ins.extend(
                    g.fanins
                        .iter()
                        .map(|f| resolve_word(f, patterns, &values, w)),
                );
                *slot = eval_table(function, &ins);
            }
            values.push(out);
        }
        self.outputs
            .iter()
            .map(|o| (0..words).map(|w| resolve_word(o, patterns, &values, w)).collect())
            .collect()
    }
}

fn resolve(r: &NetRef, pis: &[Signal], gates: &[Signal], net: &Network) -> Signal {
    match r {
        NetRef::Const(v) => net.constant(*v),
        NetRef::Input(i) => pis[*i],
        NetRef::Gate(i) => gates[*i],
    }
}

impl fmt::Display for CellNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell netlist '{}': {} gates, {} inputs, {} outputs",
            self.name,
            self.gates.len(),
            self.inputs,
            self.outputs.len()
        )
    }
}

/// One K-input lookup table.
#[derive(Clone, PartialEq, Debug)]
pub struct MappedLut {
    /// The LUT's function over its fanins.
    pub function: TruthTable,
    /// Drivers of the LUT inputs (variable `i` of the function reads fanin `i`).
    pub fanins: Vec<NetRef>,
}

/// A K-LUT netlist produced by FPGA mapping.
///
/// Equality is structural (same LUT masks, fanins and outputs in the same
/// order) — the parallel-mapping determinism tests rely on it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LutNetlist {
    name: String,
    inputs: usize,
    luts: Vec<MappedLut>,
    outputs: Vec<NetRef>,
}

impl LutNetlist {
    /// Creates an empty LUT netlist with the given number of primary inputs.
    pub fn new(name: impl Into<String>, inputs: usize) -> Self {
        LutNetlist {
            name: name.into(),
            inputs,
            luts: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// The LUTs, in topological order.
    pub fn luts(&self) -> &[MappedLut] {
        &self.luts
    }

    /// Number of LUTs (the EPFL challenge metric).
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// The primary outputs.
    pub fn outputs(&self) -> &[NetRef] {
        &self.outputs
    }

    /// Appends a LUT and returns its reference.
    ///
    /// # Panics
    ///
    /// Panics if a fanin references a LUT that does not exist yet.
    pub fn push_lut(&mut self, function: TruthTable, fanins: Vec<NetRef>) -> NetRef {
        assert_eq!(function.num_vars(), fanins.len(), "one fanin per LUT variable");
        for f in &fanins {
            if let NetRef::Gate(i) = f {
                assert!(*i < self.luts.len(), "fanin must precede the LUT");
            }
        }
        self.luts.push(MappedLut { function, fanins });
        NetRef::Gate(self.luts.len() - 1)
    }

    /// Declares a primary output.
    pub fn push_output(&mut self, driver: NetRef) {
        self.outputs.push(driver);
    }

    /// Logic depth in LUT levels (the EPFL challenge's second metric).
    pub fn level_count(&self) -> u32 {
        let mut levels = vec![0u32; self.luts.len()];
        for (i, l) in self.luts.iter().enumerate() {
            levels[i] = 1 + l
                .fanins
                .iter()
                .map(|f| match f {
                    NetRef::Gate(j) => levels[*j],
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
        }
        self.outputs
            .iter()
            .map(|o| match o {
                NetRef::Gate(i) => levels[*i],
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Rebuilds a logic network implementing the netlist, for equivalence
    /// checking against the pre-mapping network.
    pub fn to_network(&self) -> Network {
        let mut net = Network::with_name(NetworkKind::Mixed, self.name.clone());
        let pis = net.add_inputs(self.inputs);
        let mut signals: Vec<Signal> = Vec::with_capacity(self.luts.len());
        for l in &self.luts {
            let leaves: Vec<Signal> = l
                .fanins
                .iter()
                .map(|f| resolve(f, &pis, &signals, &net))
                .collect();
            let out = emit_decomposed(&mut net, &l.function, &leaves);
            signals.push(out);
        }
        for o in &self.outputs {
            let s = resolve(o, &pis, &signals, &net);
            net.add_output(s);
        }
        net
    }

    /// Simulates the netlist on word-parallel input patterns.
    ///
    /// `patterns[i]` holds the stimulus words of primary input `i` (64
    /// patterns per word, matching [`mch_logic::simulate`]); each LUT is
    /// evaluated from its mask. Returns one vector of words per primary
    /// output, directly comparable against [`mch_logic::simulate`] of the
    /// pre-mapping network.
    ///
    /// # Panics
    ///
    /// Panics if the number of pattern rows differs from the input count or
    /// the rows have inconsistent lengths.
    pub fn simulate(&self, patterns: &[Vec<u64>]) -> Vec<Vec<u64>> {
        assert_eq!(patterns.len(), self.inputs, "one pattern row per input");
        let words = patterns.first().map_or(0, Vec::len);
        for row in patterns {
            assert_eq!(row.len(), words, "inconsistent pattern widths");
        }
        let mut values: Vec<Vec<u64>> = Vec::with_capacity(self.luts.len());
        let mut ins: Vec<u64> = Vec::new();
        for l in &self.luts {
            let mut out = vec![0u64; words];
            for (w, slot) in out.iter_mut().enumerate() {
                ins.clear();
                ins.extend(
                    l.fanins
                        .iter()
                        .map(|f| resolve_word(f, patterns, &values, w)),
                );
                *slot = eval_table(&l.function, &ins);
            }
            values.push(out);
        }
        self.outputs
            .iter()
            .map(|o| (0..words).map(|w| resolve_word(o, patterns, &values, w)).collect())
            .collect()
    }
}

impl fmt::Display for LutNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT netlist '{}': {} LUTs, {} levels",
            self.name,
            self.lut_count(),
            self.level_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::cec;
    use mch_techlib::asap7_lite;

    #[test]
    fn cell_netlist_metrics() {
        let lib = asap7_lite();
        let nand = lib.find_cell("NAND2x1").unwrap();
        let inv = lib.inverter();
        let mut nl = CellNetlist::new("t", 2);
        let g0 = nl.push_gate(nand, vec![NetRef::Input(0), NetRef::Input(1)]);
        let g1 = nl.push_gate(inv, vec![g0]);
        nl.push_output(g1);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.level_count(), 2);
        let area = nl.area(&lib);
        assert!((area - (0.081 + 0.054)).abs() < 1e-9);
        let delay = nl.delay(&lib);
        assert!((delay - (15.0 + 12.0)).abs() < 1e-9);
    }

    #[test]
    fn cell_netlist_to_network_is_and() {
        let lib = asap7_lite();
        let nand = lib.find_cell("NAND2x1").unwrap();
        let inv = lib.inverter();
        let mut nl = CellNetlist::new("t", 2);
        let g0 = nl.push_gate(nand, vec![NetRef::Input(0), NetRef::Input(1)]);
        let g1 = nl.push_gate(inv, vec![g0]);
        nl.push_output(g1);
        let net = nl.to_network(&lib);
        let mut expect = Network::new(NetworkKind::Aig);
        let a = expect.add_input();
        let b = expect.add_input();
        let f = expect.and2(a, b);
        expect.add_output(f);
        assert!(cec(&net, &expect).holds());
    }

    #[test]
    fn lut_netlist_metrics_and_export() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let mut nl = LutNetlist::new("t", 3);
        let l0 = nl.push_lut(a.xor(&b), vec![NetRef::Input(0), NetRef::Input(1)]);
        let l1 = nl.push_lut(a.and(&b), vec![l0, NetRef::Input(2)]);
        nl.push_output(l1);
        assert_eq!(nl.lut_count(), 2);
        assert_eq!(nl.level_count(), 2);
        let net = nl.to_network();
        let mut expect = Network::new(NetworkKind::Xag);
        let xs = expect.add_inputs(3);
        let x = expect.xor2(xs[0], xs[1]);
        let f = expect.and2(x, xs[2]);
        expect.add_output(f);
        assert!(cec(&net, &expect).holds());
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn forward_references_are_rejected() {
        let mut nl = LutNetlist::new("t", 1);
        let _ = nl.push_lut(TruthTable::var(1, 0), vec![NetRef::Gate(3)]);
    }

    #[test]
    fn lut_netlist_simulation_matches_exported_network() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let mut nl = LutNetlist::new("t", 3);
        let l0 = nl.push_lut(a.xor(&b), vec![NetRef::Input(0), NetRef::Input(1)]);
        let l1 = nl.push_lut(a.and(&b).not(), vec![l0, NetRef::Input(2)]);
        nl.push_output(l1);
        nl.push_output(NetRef::Const(true));
        let patterns = vec![vec![0xDEAD_BEEF_0123_4567], vec![0x0F0F_F0F0_AAAA_5555], vec![0x00FF_FF00_CCCC_3333]];
        let direct = nl.simulate(&patterns);
        let via_network = mch_logic::simulate(&nl.to_network(), &patterns);
        assert_eq!(direct, via_network);
        assert_eq!(direct[1], vec![!0u64]);
    }

    #[test]
    fn cell_netlist_simulation_matches_exported_network() {
        let lib = asap7_lite();
        let nand = lib.find_cell("NAND2x1").unwrap();
        let inv = lib.inverter();
        let mut nl = CellNetlist::new("t", 2);
        let g0 = nl.push_gate(nand, vec![NetRef::Input(0), NetRef::Input(1)]);
        let g1 = nl.push_gate(inv, vec![g0]);
        nl.push_output(g1);
        nl.push_output(g0);
        let patterns = vec![vec![0xFFFF_0000_F0F0_CCCC], vec![0xAAAA_AAAA_5555_5555]];
        let direct = nl.simulate(&lib, &patterns);
        let via_network = mch_logic::simulate(&nl.to_network(&lib), &patterns);
        assert_eq!(direct, via_network);
        // g1 is the AND of the two inputs.
        assert_eq!(direct[0][0], patterns[0][0] & patterns[1][0]);
    }

    #[test]
    fn constant_outputs_are_allowed() {
        let lib = asap7_lite();
        let mut nl = CellNetlist::new("t", 0);
        nl.push_output(NetRef::Const(true));
        assert_eq!(nl.delay(&lib), 0.0);
        assert_eq!(nl.area(&lib), 0.0);
        let net = nl.to_network(&lib);
        assert_eq!(net.output_count(), 1);
    }
}
