//! Prepared cover state: the params-independent half of a mapping run, built
//! once and re-solved under many parameter variants (the warm-start path).
//!
//! Both mappers split into two phases with very different reuse profiles:
//!
//! 1. **Preparation** — cut enumeration + choice transfer + candidate
//!    enumeration (Boolean matching for ASIC targets). Expensive, and a pure
//!    function of `(choice network, cut configuration, library)` — no
//!    [`EngineParams`](crate::engine::EngineParams) knob reaches it.
//! 2. **Solving** — the covering dynamic program. Cheap by comparison, and
//!    the only phase that sees `area_rounds`, `exact_area`, objectives or
//!    memoisation.
//!
//! A [`PreparedCover`] captures phase 1 — the compacted cut set plus the
//! [`CoverSkeleton`] built over it — so a parameter sweep pays it once and
//! runs phase 2 per variant via [`map_lut_prepared`] / [`map_asic_prepared`]
//! (and [`crate::fusion::map_lut_fused_prepared`] for the fused pipeline).
//! Every prepared solve is **byte-identical** to the corresponding one-shot
//! mapper call: preparation is deterministic and thread-invariant, so the
//! cached artifacts equal freshly built ones, and
//! [`CoverProblem::with_skeleton`] clones the skeleton per solve so no
//! per-problem mutation ever reaches the shared copy.
//! `tests/service_warm_start.rs` in `mch_core` pins this end to end.

use crate::asic::{library_cost_model, AsicMapParams, AsicTarget, MatchCandidate};
use crate::engine::{CoverProblem, CoverSkeleton};
use crate::lut::{LutCandidate, LutMapParams, LutTarget};
use crate::mapping::prepare_cuts;
use crate::netlist::{CellNetlist, LutNetlist};
use mch_choice::ChoiceNetwork;
use mch_cut::{CutCostModel, NetworkCuts};
use mch_techlib::{Library, LutLibrary};

/// The params-independent artifact of one mapper over one choice network:
/// the compacted cut set and the candidate skeleton enumerated from it.
///
/// Build via [`prepare_lut_cover`] / [`prepare_asic_cover`] /
/// [`crate::fusion::prepare_fusion_guide`]; solve any number of times via the
/// matching `map_*_prepared` entry point. The skeleton depends on the cut
/// set, the library and nothing else, so one `PreparedCover` serves every
/// combination of objective, `area_rounds`, `exact_area` and `memoise`.
pub struct PreparedCover<C> {
    pub(crate) cuts: NetworkCuts,
    pub(crate) skeleton: CoverSkeleton<C>,
}

impl<C> PreparedCover<C> {
    /// The compacted cut set the skeleton was enumerated from.
    pub fn cuts(&self) -> &NetworkCuts {
        &self.cuts
    }

    /// The candidate skeleton (see [`CoverSkeleton`]).
    pub fn skeleton(&self) -> &CoverSkeleton<C> {
        &self.skeleton
    }

    /// Approximate heap footprint in bytes; `candidate_bytes` supplies the
    /// per-candidate estimate (see [`LutCandidate::approx_bytes`] /
    /// [`MatchCandidate::approx_bytes`]). Used by the warm-start cache's
    /// byte accounting in `mch_core`.
    pub fn approx_bytes(&self, candidate_bytes: impl Fn(&C) -> usize) -> usize {
        self.cuts.approx_bytes() + self.skeleton.approx_bytes(candidate_bytes)
    }
}

/// Runs the preparation phase of [`map_lut`](crate::map_lut): cut enumeration
/// with the unit cost model, compaction, and K-LUT candidate enumeration.
///
/// Of `params`, only `cut_limit`, `cut_ranking` and `threads` reach this
/// phase — and `threads` never changes the result (enumeration is
/// thread-invariant), so a cache key over the artifact needs only the first
/// two plus the LUT library.
pub fn prepare_lut_cover(
    choice: &ChoiceNetwork,
    lut: &LutLibrary,
    params: &LutMapParams,
) -> PreparedCover<LutCandidate> {
    let mut cuts = prepare_cuts(
        choice,
        lut.k(),
        params.cut_limit,
        params.cut_ranking,
        &CutCostModel::unit(),
        params.threads,
    );
    cuts.compact();
    let skeleton = {
        let target = LutTarget::new(lut, &cuts);
        CoverSkeleton::build(choice, &target)
    };
    PreparedCover { cuts, skeleton }
}

/// The solving phase of [`map_lut`](crate::map_lut) over a prepared cover.
///
/// Byte-identical to `map_lut(choice, lut, params)` whenever `prep` came from
/// [`prepare_lut_cover`] over the same choice network, LUT library and
/// cut configuration (`cut_limit`, `cut_ranking`).
pub fn map_lut_prepared(
    choice: &ChoiceNetwork,
    lut: &LutLibrary,
    prep: &PreparedCover<LutCandidate>,
    params: &LutMapParams,
) -> LutNetlist {
    let target = LutTarget::new(lut, &prep.cuts);
    let problem = CoverProblem::with_skeleton(choice, &target, prep.skeleton.clone());
    problem.solve(&params.engine_params())
}

/// Runs the preparation phase of [`map_asic`](crate::map_asic): cut
/// enumeration with the [`library_cost_model`] ranking, compaction, and
/// Boolean matching of every cut against the library.
///
/// Of `params`, only `cut_limit`, `cut_ranking` and `threads` reach this
/// phase; `threads` never changes the result, so a cache key needs only the
/// first two plus the cell library.
pub fn prepare_asic_cover(
    choice: &ChoiceNetwork,
    library: &Library,
    params: &AsicMapParams,
) -> PreparedCover<MatchCandidate> {
    let cut_size = library.max_inputs().clamp(3, 6);
    let mut cuts = prepare_cuts(
        choice,
        cut_size,
        params.cut_limit,
        params.cut_ranking,
        &library_cost_model(library),
        params.threads,
    );
    cuts.compact();
    let skeleton = {
        let target = AsicTarget::new(library, &cuts);
        CoverSkeleton::build(choice, &target)
    };
    PreparedCover { cuts, skeleton }
}

/// The solving phase of [`map_asic`](crate::map_asic) over a prepared cover.
///
/// Byte-identical to `map_asic(choice, library, params)` whenever `prep` came
/// from [`prepare_asic_cover`] over the same choice network, library and cut
/// configuration.
pub fn map_asic_prepared(
    choice: &ChoiceNetwork,
    library: &Library,
    prep: &PreparedCover<MatchCandidate>,
    params: &AsicMapParams,
) -> CellNetlist {
    let target = AsicTarget::new(library, &prep.cuts);
    let problem = CoverProblem::with_skeleton(choice, &target, prep.skeleton.clone());
    problem.solve(&params.engine_params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asic::map_asic;
    use crate::lut::map_lut;
    use crate::mapping::MappingObjective;
    use mch_choice::{build_mch, MchParams};
    use mch_logic::{Network, NetworkKind};
    use mch_techlib::asap7_lite;

    fn adder6() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "adder6");
        let a = n.add_inputs(6);
        let b = n.add_inputs(6);
        let mut carry = n.constant(false);
        for i in 0..6 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            n.add_output(s);
            carry = c;
        }
        n.add_output(carry);
        n
    }

    #[test]
    fn prepared_lut_solves_match_one_shot_mapping_bytes() {
        let net = adder6();
        let choice = build_mch(&net, &MchParams::area_oriented());
        let lut = LutLibrary::k6();
        let base = LutMapParams::new(MappingObjective::Area);
        let prep = prepare_lut_cover(&choice, &lut, &base);
        // Every variant shares the preparation (same cut_limit/ranking);
        // solves over the shared artifact must equal one-shot runs.
        for params in [
            base,
            base.with_area_rounds(1),
            base.with_area_rounds(8),
            base.with_exact_area(true),
            base.with_memoise(false),
            LutMapParams {
                objective: MappingObjective::Delay,
                ..base
            },
        ] {
            assert_eq!(
                map_lut_prepared(&choice, &lut, &prep, &params),
                map_lut(&choice, &lut, &params),
                "{params:?} diverged from the one-shot mapper"
            );
        }
    }

    #[test]
    fn prepared_asic_solves_match_one_shot_mapping_bytes() {
        let net = adder6();
        let choice = build_mch(&net, &MchParams::area_oriented());
        let lib = asap7_lite();
        let base = AsicMapParams::new(MappingObjective::Balanced);
        let prep = prepare_asic_cover(&choice, &lib, &base);
        for params in [
            base,
            base.with_area_rounds(0),
            base.with_area_rounds(5),
            base.with_exact_area(true),
            base.with_memoise(false),
            AsicMapParams {
                objective: MappingObjective::Area,
                ..base
            },
        ] {
            assert_eq!(
                map_asic_prepared(&choice, &lib, &prep, &params),
                map_asic(&choice, &lib, &params),
                "{params:?} diverged from the one-shot mapper"
            );
        }
    }

    #[test]
    fn prepared_cover_reports_a_plausible_footprint() {
        let net = adder6();
        let choice = build_mch(&net, &MchParams::area_oriented());
        let prep = prepare_lut_cover(&choice, &LutLibrary::k6(), &LutMapParams::default());
        let bytes = prep.approx_bytes(LutCandidate::approx_bytes);
        // The cut arena alone is thousands of bytes for this network; the
        // estimate must dominate it and stay finite-ish.
        assert!(bytes > prep.cuts().approx_bytes());
        assert!(bytes < 64 << 20, "absurd footprint estimate: {bytes}");
    }
}
