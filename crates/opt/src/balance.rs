//! Tree balancing: re-associates maximal AND / XOR / OR trees to minimise
//! logic depth (the `b` step of ABC's `compress2rs`).

use mch_logic::{GateKind, Network, NodeId, Signal};

/// Collects the leaves of the maximal single-kind tree rooted at `root`.
///
/// A fanin is expanded when it is a gate of the same kind, is not complemented
/// (complemented edges break AND-tree associativity in an AIG), and has a
/// single fanout (so duplicating it would not lose sharing).
fn collect_tree_leaves(
    network: &Network,
    root: NodeId,
    kind: GateKind,
    leaves: &mut Vec<Signal>,
) {
    for &f in network.node(root).fanins() {
        let n = f.node();
        let expandable = !f.is_complement()
            && network.is_gate(n)
            && network.node(n).kind() == kind
            && network.fanout_count(n) == 1
            && kind != GateKind::Maj3;
        if expandable {
            collect_tree_leaves(network, n, kind, leaves);
        } else {
            leaves.push(f);
        }
    }
}

/// Balances the network: every maximal AND / XOR tree is rebuilt as a
/// balanced tree over its leaves, reducing depth without changing the
/// function. Majority nodes are copied verbatim.
///
/// # Example
///
/// ```
/// use mch_logic::{cec, Network, NetworkKind};
/// use mch_opt::balance;
///
/// // A skewed AND chain of depth 7 …
/// let mut n = Network::new(NetworkKind::Aig);
/// let xs = n.add_inputs(8);
/// let mut acc = xs[0];
/// for &x in &xs[1..] {
///     acc = n.and2(acc, x);
/// }
/// n.add_output(acc);
/// assert_eq!(n.depth(), 7);
///
/// // … becomes a balanced tree of depth 3.
/// let b = balance(&n);
/// assert_eq!(b.depth(), 3);
/// assert!(cec(&n, &b).holds());
/// ```
pub fn balance(network: &Network) -> Network {
    let mut out = Network::with_name(network.kind(), network.name().to_string());
    let mut map: Vec<Signal> = vec![Signal::CONST0; network.len()];
    for &pi in network.inputs() {
        map[pi.index()] = out.add_input();
    }
    for id in network.gate_ids() {
        let node = network.node(id);
        let kind = node.kind();
        let mapped: Signal = match kind {
            GateKind::And2 | GateKind::Xor2 => {
                let mut leaves = Vec::new();
                collect_tree_leaves(network, id, kind, &mut leaves);
                let mut mapped_leaves: Vec<Signal> = leaves
                    .iter()
                    .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
                    .collect();
                // Sort by level so the balanced reduction pairs shallow
                // signals first (late-arriving signals end near the root).
                mapped_leaves.sort_by_key(|s| out.level(s.node()));
                if kind == GateKind::And2 {
                    out.and_reduce(&mapped_leaves)
                } else {
                    out.xor_reduce(&mapped_leaves)
                }
            }
            GateKind::Maj3 => {
                let f: Vec<Signal> = node
                    .fanins()
                    .iter()
                    .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
                    .collect();
                out.maj3(f[0], f[1], f[2])
            }
            _ => unreachable!("gate_ids yields only gates"),
        };
        map[id.index()] = mapped;
    }
    for &o in network.outputs() {
        out.add_output(map[o.node().index()].xor_complement(o.is_complement()));
    }
    out.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{cec, NetworkKind};

    #[test]
    fn balances_xor_chains() {
        let mut n = Network::new(NetworkKind::Xag);
        let xs = n.add_inputs(16);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = n.xor2(acc, x);
        }
        n.add_output(acc);
        assert_eq!(n.depth(), 15);
        let b = balance(&n);
        assert_eq!(b.depth(), 4);
        assert!(cec(&n, &b).holds());
    }

    #[test]
    fn preserves_shared_subtrees() {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(4);
        let shared = n.and2(xs[0], xs[1]);
        let f = n.and2(shared, xs[2]);
        let g = n.and2(shared, xs[3]);
        n.add_output(f);
        n.add_output(g);
        let b = balance(&n);
        assert!(cec(&n, &b).holds());
        // Sharing must not be destroyed (node count may not grow).
        assert!(b.gate_count() <= n.gate_count());
    }

    #[test]
    fn balances_mig_network_without_change_in_function() {
        let mut n = Network::new(NetworkKind::Mig);
        let xs = n.add_inputs(5);
        let m1 = n.maj3(xs[0], xs[1], xs[2]);
        let m2 = n.maj3(m1, xs[3], xs[4]);
        n.add_output(m2);
        let b = balance(&n);
        assert!(cec(&n, &b).holds());
        assert_eq!(b.gate_count(), n.gate_count());
    }

    #[test]
    fn never_increases_depth() {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(6);
        let a = n.and2(xs[0], xs[1]);
        let b2 = n.or(a, xs[2]);
        let c = n.xor(b2, xs[3]);
        let d = n.and2(c, xs[4]);
        let e = n.or(d, xs[5]);
        n.add_output(e);
        let bal = balance(&n);
        assert!(bal.depth() <= n.depth());
        assert!(cec(&n, &bal).holds());
    }
}
