//! A `compress2rs`-like technology-independent optimization script.
//!
//! ABC's `compress2rs` interleaves balancing, rewriting, refactoring and
//! resubstitution. The reproduction's script interleaves the corresponding
//! passes of this crate and iterates to a fixed point; it is used to prepare
//! the Table-I inputs ("the experiment first used ABC's `compress2rs` flow for
//! iterative optimization").

use crate::{balance, refactor, rewrite};
use mch_logic::Network;

/// Runs one balance → rewrite → refactor → balance round.
pub fn compress_round(network: &Network) -> Network {
    let b1 = balance(network);
    let rw = rewrite(&b1);
    let rf = refactor(&rw);
    balance(&rf)
}

/// Iterates [`compress_round`] until the gate count stops improving or
/// `max_rounds` is reached.
///
/// # Example
///
/// ```
/// use mch_logic::{cec, Network, NetworkKind};
/// use mch_opt::compress2rs_like;
///
/// let mut n = Network::new(NetworkKind::Aig);
/// let xs = n.add_inputs(4);
/// let t1 = n.and2(xs[0], xs[2]);
/// let t2 = n.and2(xs[0], xs[3]);
/// let t3 = n.and2(xs[1], xs[2]);
/// let t4 = n.and2(xs[1], xs[3]);
/// let o1 = n.or(t1, t2);
/// let o2 = n.or(t3, t4);
/// let f = n.or(o1, o2);
/// n.add_output(f);
///
/// let opt = compress2rs_like(&n, 3);
/// assert!(opt.gate_count() <= n.gate_count());
/// assert!(cec(&n, &opt).holds());
/// ```
pub fn compress2rs_like(network: &Network, max_rounds: usize) -> Network {
    let mut current = network.clone();
    for _ in 0..max_rounds {
        let next = compress_round(&current);
        let improved = next.gate_count() < current.gate_count()
            || (next.gate_count() == current.gate_count() && next.depth() < current.depth());
        if improved {
            current = next;
        } else {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{cec, NetworkKind};

    fn messy_network() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "messy");
        let xs = n.add_inputs(8);
        // Hand-expanded XORs and un-factored SOPs, chained.
        let mut layer = Vec::new();
        for i in 0..4 {
            let a = xs[2 * i];
            let b = xs[2 * i + 1];
            let t1 = n.and2(a, !b);
            let t2 = n.and2(!a, b);
            layer.push(n.or(t1, t2));
        }
        let mut terms = Vec::new();
        for &x in &layer[0..2] {
            for &y in &layer[2..4] {
                terms.push(n.and2(x, y));
            }
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = n.or(acc, t);
        }
        n.add_output(acc);
        n.add_output(layer[0]);
        n
    }

    #[test]
    fn compress_reduces_size_and_preserves_function() {
        let n = messy_network();
        let opt = compress2rs_like(&n, 4);
        assert!(cec(&n, &opt).holds());
        assert!(opt.gate_count() < n.gate_count());
    }

    #[test]
    fn compress_is_idempotent_at_fixed_point() {
        let n = messy_network();
        let once = compress2rs_like(&n, 6);
        let twice = compress2rs_like(&once, 2);
        assert!(twice.gate_count() >= once.gate_count() - 1);
        assert!(cec(&n, &twice).holds());
    }

    #[test]
    fn compress_handles_xmg_networks() {
        let mut n = Network::new(NetworkKind::Xmg);
        let xs = n.add_inputs(5);
        let m = n.maj3(xs[0], xs[1], xs[2]);
        let x = n.xor2(m, xs[3]);
        let y = n.maj3(x, xs[4], m);
        n.add_output(y);
        let opt = compress2rs_like(&n, 2);
        assert!(cec(&n, &opt).holds());
    }
}
