//! Graph mapping: mapping-based conversion and optimization of logic networks
//! (Calvino et al., ASP-DAC'22), plus its MCH-based extension (Fig. 5 of the
//! paper).
//!
//! Graph mapping runs the cut-based mapper with a *graph* target instead of a
//! technology target: every selected cut is re-expressed in the desired
//! representation, so the result is an optimized logic network rather than a
//! netlist. With a mixed choice network as the subject graph, the mapper picks
//! the best structure among heterogeneous candidates — this is what lets the
//! MCH-based optimization escape the local optima of the single-representation
//! algorithm.

use mch_choice::{ChoiceNetwork, NpnDatabase, SynthesisStrategy};
use mch_logic::{GateKind, Network, NetworkKind, NodeId, Signal, TruthTable};
use mch_mapper::{map_lut, LutMapParams, MappingObjective, NetRef};
use mch_techlib::LutLibrary;
use std::collections::HashMap;

/// Cut size used when harvesting cones for graph mapping.
const GRAPH_MAP_CUT_SIZE: usize = 4;

/// Computes the function of `root` over the cone bounded by `leaves`.
///
/// Returns `None` when a cone node depends on something that is neither a cone
/// node nor a leaf, or when there are more than eight leaves.
pub(crate) fn cone_function(
    network: &Network,
    cone: &[NodeId],
    root: NodeId,
    leaves: &[NodeId],
) -> Option<TruthTable> {
    if leaves.len() > 8 || leaves.is_empty() {
        return None;
    }
    let n = leaves.len();
    let mut values: HashMap<NodeId, TruthTable> = HashMap::new();
    for (i, &l) in leaves.iter().enumerate() {
        values.insert(l, TruthTable::var(n, i));
    }
    values.insert(NodeId::CONST0, TruthTable::zeros(n));
    let mut sorted: Vec<NodeId> = cone.to_vec();
    sorted.sort();
    for id in sorted {
        if values.contains_key(&id) {
            continue;
        }
        let node = network.node(id);
        let mut fs = Vec::with_capacity(3);
        for s in node.fanins() {
            let base = values.get(&s.node())?;
            fs.push(if s.is_complement() { base.not() } else { base.clone() });
        }
        let t = match node.kind() {
            GateKind::And2 => fs[0].and(&fs[1]),
            GateKind::Xor2 => fs[0].xor(&fs[1]),
            GateKind::Maj3 => TruthTable::maj(&fs[0], &fs[1], &fs[2]),
            _ => return None,
        };
        values.insert(id, t);
    }
    values.get(&root).cloned()
}

/// Graph-maps a choice network into the `target` representation.
///
/// The subject graph is covered with 4-input cuts by the choice-aware LUT
/// mapper; each selected cut is then re-synthesised in the target
/// representation (level-oriented decomposition for the delay objective,
/// SOP factoring otherwise).
pub fn graph_map_with_choices(
    choice: &ChoiceNetwork,
    target: NetworkKind,
    objective: MappingObjective,
) -> Network {
    let lut = LutLibrary::new(GRAPH_MAP_CUT_SIZE, 1.0, 1.0);
    let params = LutMapParams::new(objective);
    let cover = map_lut(choice, &lut, &params);

    // For each covered cone pick the better of the two resynthesis strategies:
    // the level-oriented decomposition (finds XOR/MUX/MAJ tops) and the
    // area-oriented SOP factoring. The delay objective weighs depth first.
    let mut strategy_cache: HashMap<TruthTable, SynthesisStrategy> = HashMap::new();
    let mut choose_strategy = |f: &TruthTable| -> SynthesisStrategy {
        if let Some(&s) = strategy_cache.get(f) {
            return s;
        }
        let dec = mch_choice::synthesize(f, target, SynthesisStrategy::Decompose);
        let sop = mch_choice::synthesize(f, target, SynthesisStrategy::SopFactor);
        let key_dec = if objective == MappingObjective::Delay {
            (dec.depth() as usize, dec.gate_count())
        } else {
            (dec.gate_count(), dec.depth() as usize)
        };
        let key_sop = if objective == MappingObjective::Delay {
            (sop.depth() as usize, sop.gate_count())
        } else {
            (sop.gate_count(), sop.depth() as usize)
        };
        let s = if key_dec <= key_sop {
            SynthesisStrategy::Decompose
        } else {
            SynthesisStrategy::SopFactor
        };
        strategy_cache.insert(f.clone(), s);
        s
    };
    let mut db = NpnDatabase::new();
    let source = choice.network();
    let mut out = Network::with_name(target, source.name().to_string());
    let pis = out.add_inputs(source.input_count());
    let mut lut_signal: Vec<Signal> = Vec::with_capacity(cover.lut_count());
    for l in cover.luts() {
        let leaves: Vec<Signal> = l
            .fanins
            .iter()
            .map(|f| match f {
                NetRef::Const(v) => out.constant(*v),
                NetRef::Input(i) => pis[*i],
                NetRef::Gate(i) => lut_signal[*i],
            })
            .collect();
        let strategy = choose_strategy(&l.function);
        let s = db.emit(&mut out, &l.function, &leaves, target, strategy);
        lut_signal.push(s);
    }
    for o in cover.outputs() {
        let s = match o {
            NetRef::Const(v) => out.constant(*v),
            NetRef::Input(i) => pis[*i],
            NetRef::Gate(i) => lut_signal[*i],
        };
        out.add_output(s);
    }
    out.cleanup()
}

/// Graph-maps a plain network (no choices) into the `target` representation.
///
/// # Example
///
/// ```
/// use mch_logic::{cec, Network, NetworkKind};
/// use mch_mapper::MappingObjective;
/// use mch_opt::graph_map;
///
/// let mut aig = Network::new(NetworkKind::Aig);
/// let xs = aig.add_inputs(3);
/// let s = aig.xor(xs[0], xs[1]);
/// let f = aig.maj(s, xs[2], xs[0]);
/// aig.add_output(f);
///
/// let xmg = graph_map(&aig, NetworkKind::Xmg, MappingObjective::Balanced);
/// assert_eq!(xmg.kind(), NetworkKind::Xmg);
/// assert!(cec(&aig, &xmg).holds());
/// ```
pub fn graph_map(
    network: &Network,
    target: NetworkKind,
    objective: MappingObjective,
) -> Network {
    graph_map_with_choices(&ChoiceNetwork::from_network(network), target, objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_choice::{build_mch, MchParams};
    use mch_logic::cec;

    fn sample() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "gm-sample");
        let a = n.add_inputs(4);
        let b = n.add_inputs(4);
        let mut carry = n.constant(false);
        for i in 0..4 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            n.add_output(s);
            carry = c;
        }
        n.add_output(carry);
        n
    }

    #[test]
    fn graph_map_converts_and_preserves_function() {
        let net = sample();
        for target in NetworkKind::homogeneous() {
            for objective in [MappingObjective::Delay, MappingObjective::Area] {
                let mapped = graph_map(&net, target, objective);
                assert_eq!(mapped.kind(), target);
                assert!(cec(&net, &mapped).holds(), "{target} {objective:?}");
            }
        }
    }

    #[test]
    fn xmg_graph_map_uses_majorities_for_adders() {
        let net = sample();
        let xmg = graph_map(&net, NetworkKind::Xmg, MappingObjective::Area);
        let (_, xor, maj) = xmg.gate_profile();
        assert!(maj > 0, "carry chains should become majority gates");
        assert!(xor > 0, "sums should become XOR gates");
        // The XMG should be more compact than the AND-only original.
        assert!(xmg.gate_count() < net.gate_count());
    }

    #[test]
    fn choice_based_graph_map_preserves_function() {
        let net = sample();
        let mch = build_mch(&net, &MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]));
        let mapped = graph_map_with_choices(&mch, NetworkKind::Xmg, MappingObjective::Area);
        assert!(cec(&net, &mapped).holds());
    }

    #[test]
    fn cone_function_matches_direct_evaluation() {
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(3);
        let ab = n.and2(xs[0], xs[1]);
        let f = n.and2(ab, !xs[2]);
        n.add_output(f);
        let cone = vec![ab.node(), f.node()];
        let leaves: Vec<NodeId> = xs.iter().map(|s| s.node()).collect();
        let t = cone_function(&n, &cone, f.node(), &leaves).unwrap();
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        assert_eq!(t, a.and(&b).and(&c.not()));
    }
}
