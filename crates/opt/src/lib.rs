//! Technology-independent optimization and mapping-based (graph) optimization.
//!
//! The crate provides the optimization substrate the experiments rely on:
//!
//! * [`balance`], [`rewrite`], [`refactor`] and the [`compress2rs_like`]
//!   script — the stand-ins for ABC's technology-independent flow used to
//!   prepare the Table-I inputs;
//! * [`graph_map`] / [`graph_map_with_choices`] — mapping-based conversion and
//!   optimization between representations (Fig. 5);
//! * [`iterate_graph_map`] / [`iterate_graph_map_mch`] — the Fig. 6
//!   experiment: iterating graph mapping to a local optimum, with MCH helping
//!   escape it.
//!
//! # Example
//!
//! ```
//! use mch_logic::{cec, Network, NetworkKind};
//! use mch_mapper::MappingObjective;
//! use mch_opt::{compress2rs_like, graph_map};
//!
//! let mut aig = Network::new(NetworkKind::Aig);
//! let xs = aig.add_inputs(4);
//! let t1 = aig.and2(xs[0], xs[2]);
//! let t2 = aig.and2(xs[0], xs[3]);
//! let t3 = aig.and2(xs[1], xs[2]);
//! let t4 = aig.and2(xs[1], xs[3]);
//! let o = aig.or_reduce(&[t1, t2, t3, t4]);
//! aig.add_output(o);
//!
//! let optimized = compress2rs_like(&aig, 3);
//! let as_mig = graph_map(&optimized, NetworkKind::Mig, MappingObjective::Area);
//! assert!(cec(&aig, &as_mig).holds());
//! ```

mod balance;
mod compress;
mod graph_map;
mod mch_opt;
mod rewrite;

pub use balance::balance;
pub use compress::{compress2rs_like, compress_round};
pub use graph_map::{graph_map, graph_map_with_choices};
pub use mch_opt::{iterate_graph_map, iterate_graph_map_mch, GraphOptResult};
pub use rewrite::{refactor, rewrite};
