//! Iterative graph-mapping optimization, with and without MCH (the Fig. 6
//! experiment of the paper).

use crate::compress::compress2rs_like;
use crate::graph_map::{graph_map, graph_map_with_choices};
use mch_choice::{add_snapshot_choices, build_mch, MchParams};
use mch_logic::{Network, NetworkKind};
use mch_mapper::MappingObjective;

/// Result of an iterated graph-mapping optimization.
#[derive(Clone, Debug)]
pub struct GraphOptResult {
    /// The optimized network.
    pub network: Network,
    /// Number of accepted improvement iterations.
    pub iterations: usize,
}

impl GraphOptResult {
    /// Gate count of the optimized network.
    pub fn gate_count(&self) -> usize {
        self.network.gate_count()
    }

    /// Depth of the optimized network.
    pub fn depth(&self) -> u32 {
        self.network.depth()
    }
}

fn score(network: &Network, objective: MappingObjective) -> (usize, usize) {
    match objective {
        MappingObjective::Delay => (network.depth() as usize, network.gate_count()),
        _ => (network.gate_count(), network.depth() as usize),
    }
}

/// Iterates plain graph mapping (single representation) until no further
/// improvement — the "Graph Map" baseline of Fig. 6, driven into its local
/// optimum.
pub fn iterate_graph_map(
    network: &Network,
    target: NetworkKind,
    objective: MappingObjective,
    max_iterations: usize,
) -> GraphOptResult {
    let mut current = if network.kind() == target {
        network.clone()
    } else {
        graph_map(network, target, objective)
    };
    let mut iterations = 0;
    for _ in 0..max_iterations {
        let next = graph_map(&current, target, objective);
        if score(&next, objective) < score(&current, objective) {
            current = next;
            iterations += 1;
        } else {
            break;
        }
    }
    GraphOptResult {
        network: current,
        iterations,
    }
}

/// Iterates MCH-based graph mapping: each round builds a mixed choice network
/// over the current result (per `mch_params`, e.g. MIG + XMG) and graph-maps
/// it, letting the mapper choose the better structure among the heterogeneous
/// candidates. This is the "MCH for Graph Map" series of Fig. 6.
pub fn iterate_graph_map_mch(
    network: &Network,
    target: NetworkKind,
    mch_params: &MchParams,
    objective: MappingObjective,
    max_iterations: usize,
) -> GraphOptResult {
    let mut current = if network.kind() == target {
        network.clone()
    } else {
        graph_map(network, target, objective)
    };
    let mut iterations = 0;
    for _ in 0..max_iterations {
        let mut choices = build_mch(&current, mch_params);
        // Mix in whole restructured views of the design: a graph-mapped
        // version in each secondary representation and a rewritten version of
        // the current network. These are the heterogeneous global structures
        // ("mixed choice networks composed of MIG and XMG") that let the
        // optimization escape the single-representation local optimum.
        for &kind in &mch_params.secondary {
            if kind != target {
                let view = graph_map(&current, kind, objective);
                add_snapshot_choices(&mut choices, &view);
            }
        }
        let rewritten = compress2rs_like(&current, 1);
        add_snapshot_choices(&mut choices, &rewritten);
        let next = graph_map_with_choices(&choices, target, objective);
        if score(&next, objective) < score(&current, objective) {
            current = next;
            iterations += 1;
        } else {
            break;
        }
    }
    GraphOptResult {
        network: current,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::cec;

    fn sample() -> Network {
        let mut n = Network::with_name(NetworkKind::Aig, "opt-sample");
        let a = n.add_inputs(4);
        let b = n.add_inputs(4);
        let mut carry = n.constant(false);
        let mut outs = Vec::new();
        for i in 0..4 {
            let (s, c) = n.full_adder(a[i], b[i], carry);
            outs.push(s);
            carry = c;
        }
        let parity = n.xor_reduce(&outs);
        n.add_output(parity);
        n.add_output(carry);
        n
    }

    #[test]
    fn baseline_iteration_reaches_fixed_point_and_is_equivalent() {
        let net = sample();
        let result = iterate_graph_map(&net, NetworkKind::Xmg, MappingObjective::Area, 5);
        assert_eq!(result.network.kind(), NetworkKind::Xmg);
        assert!(cec(&net, &result.network).holds());
        // The XMG view of an adder tree is never larger than the AIG view.
        assert!(result.gate_count() <= net.gate_count());
    }

    #[test]
    fn mch_iteration_is_equivalent_and_not_worse_than_baseline() {
        let net = sample();
        let objective = MappingObjective::Area;
        let baseline = iterate_graph_map(&net, NetworkKind::Xmg, objective, 4);
        let params = MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]);
        let with_mch = iterate_graph_map_mch(&net, NetworkKind::Xmg, &params, objective, 4);
        assert!(cec(&net, &with_mch.network).holds());
        assert!(
            with_mch.gate_count() <= baseline.gate_count() + 1,
            "MCH graph mapping should not be substantially worse ({} vs {})",
            with_mch.gate_count(),
            baseline.gate_count()
        );
    }

    #[test]
    fn delay_objective_tracks_depth() {
        let net = sample();
        let area = iterate_graph_map(&net, NetworkKind::Xmg, MappingObjective::Area, 3);
        let delay = iterate_graph_map(&net, NetworkKind::Xmg, MappingObjective::Delay, 3);
        assert!(delay.depth() <= area.depth() + 1);
        assert!(cec(&net, &delay.network).holds());
    }
}
