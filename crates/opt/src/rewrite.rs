//! DAG-aware rewriting and MFFC refactoring — the node-count reducing steps of
//! the `compress2rs`-like script.

use mch_choice::{NpnDatabase, SynthesisStrategy};
use mch_cut::{enumerate_cuts, CutParams};
use mch_logic::{mffc, GateKind, Network, NodeId, Signal};
use std::collections::HashSet;

fn copy_gate(out: &mut Network, kind: GateKind, fanins: &[Signal]) -> Signal {
    match kind {
        GateKind::And2 => out.and(fanins[0], fanins[1]),
        GateKind::Xor2 => out.xor(fanins[0], fanins[1]),
        GateKind::Maj3 => out.maj(fanins[0], fanins[1], fanins[2]),
        _ => unreachable!("only gates are copied"),
    }
}

/// Number of gates in the cone of `root` above `leaves` whose fanout stays
/// inside the cone (a cheap proxy for the logic that would disappear if the
/// cone were replaced).
fn exclusive_cone_size(network: &Network, root: NodeId, leaves: &[NodeId]) -> usize {
    let leaf_set: HashSet<NodeId> = leaves.iter().copied().collect();
    let mut cone: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if leaf_set.contains(&n) || !network.is_gate(n) || !cone.insert(n) {
            continue;
        }
        for f in network.node(n).fanins() {
            stack.push(f.node());
        }
    }
    cone.iter()
        .filter(|&&n| n == root || (network.fanout_count(n) as usize) <= 1)
        .count()
}

/// Cut-based rewriting: every node's best 4-input cut is re-synthesised via
/// the NPN database; the rewritten form replaces the original cone when its
/// standalone gate count is smaller than the cone logic it makes redundant.
///
/// Returns the rewritten (and swept) network; the function of every primary
/// output is preserved.
pub fn rewrite(network: &Network) -> Network {
    rewrite_with(network, SynthesisStrategy::Decompose, 4)
}

/// MFFC refactoring: the maximum fanout-free cone of every node is collapsed
/// and re-expressed as a factored SOP; the new form is kept when smaller.
pub fn refactor(network: &Network) -> Network {
    rewrite_with(network, SynthesisStrategy::SopFactor, 6)
}

fn rewrite_with(network: &Network, strategy: SynthesisStrategy, cut_size: usize) -> Network {
    let cuts = enumerate_cuts(network, &CutParams::new(cut_size, 6));
    let mut db = NpnDatabase::new();
    let mut out = Network::with_name(network.kind(), network.name().to_string());
    let mut map: Vec<Signal> = vec![Signal::CONST0; network.len()];
    for &pi in network.inputs() {
        map[pi.index()] = out.add_input();
    }
    for id in network.gate_ids() {
        let node = network.node(id);
        let direct_fanins: Vec<Signal> = node
            .fanins()
            .iter()
            .map(|s| map[s.node().index()].xor_complement(s.is_complement()))
            .collect();

        // Find the most promising replacement candidate among the node's cuts.
        let mut best: Option<(usize, Vec<NodeId>, mch_logic::TruthTable)> = None;
        for cut in cuts.of(id).iter() {
            if cut.is_trivial() || cut.size() < 3 {
                continue;
            }
            let gain_bound = exclusive_cone_size(network, id, cut.leaves());
            if gain_bound < 2 {
                continue;
            }
            let candidate =
                mch_choice::synthesize(cut.function(), network.kind(), strategy);
            let cost = candidate.gate_count();
            if cost < gain_bound
                && best.as_ref().is_none_or(|(c, _, _)| cost < *c)
            {
                best = Some((cost, cut.leaves().to_vec(), cut.function().clone()));
            }
        }
        // Additionally consider the MFFC for the SOP strategy (refactoring).
        if strategy == SynthesisStrategy::SopFactor {
            let cone = mffc(network, id, 8);
            if cone.size() >= 3 && cone.leaves.len() >= 2 && cone.leaves.len() <= 8 {
                let mut leaves = cone.leaves.clone();
                leaves.sort();
                if let Some(f) = super::graph_map::cone_function(network, &cone.nodes, id, &leaves)
                {
                    let candidate = mch_choice::synthesize(&f, network.kind(), strategy);
                    let cost = candidate.gate_count();
                    if cost < cone.size() && best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                        best = Some((cost, leaves, f));
                    }
                }
            }
        }

        map[id.index()] = match best {
            Some((_, leaves, function)) => {
                let leaf_sigs: Vec<Signal> =
                    leaves.iter().map(|l| map[l.index()]).collect();
                db.emit(&mut out, &function, &leaf_sigs, network.kind(), strategy)
            }
            None => copy_gate(&mut out, node.kind(), &direct_fanins),
        };
    }
    for &o in network.outputs() {
        out.add_output(map[o.node().index()].xor_complement(o.is_complement()));
    }
    let swept = out.cleanup();
    // Rewriting must never lose the original network's function; the gain
    // heuristic is local, so guard against global regressions in size.
    if swept.gate_count() <= network.gate_count() {
        swept
    } else {
        network.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::{cec, NetworkKind};

    fn redundant_network() -> Network {
        // Builds a deliberately wasteful structure: XORs expanded by hand with
        // extra duplicated logic that rewriting should clean up.
        let mut n = Network::with_name(NetworkKind::Aig, "redundant");
        let xs = n.add_inputs(6);
        let mut parts = Vec::new();
        for i in 0..3 {
            let a = xs[2 * i];
            let b = xs[2 * i + 1];
            let t1 = n.and2(a, !b);
            let t2 = n.and2(!a, b);
            let x = n.or(t1, t2); // a ^ b expanded
            let redundant = n.and2(x, x);
            parts.push(redundant);
        }
        let o1 = n.and2(parts[0], parts[1]);
        let o2 = n.and2(o1, parts[2]);
        n.add_output(o2);
        n
    }

    #[test]
    fn rewrite_preserves_function_and_does_not_grow() {
        let n = redundant_network();
        let r = rewrite(&n);
        assert!(cec(&n, &r).holds());
        assert!(r.gate_count() <= n.gate_count());
    }

    #[test]
    fn refactor_preserves_function_and_does_not_grow() {
        let n = redundant_network();
        let r = refactor(&n);
        assert!(cec(&n, &r).holds());
        assert!(r.gate_count() <= n.gate_count());
    }

    #[test]
    fn refactor_shrinks_unfactored_sop() {
        // f = a&c | a&d | b&c | b&d should refactor to (a|b)&(c|d): 8 ANDs -> 3 gates.
        let mut n = Network::new(NetworkKind::Aig);
        let xs = n.add_inputs(4);
        let mut terms = Vec::new();
        for &x in &xs[0..2] {
            for &y in &xs[2..4] {
                terms.push(n.and2(x, y));
            }
        }
        let f = n.or_reduce(&terms);
        n.add_output(f);
        let before = n.gate_count();
        let r = refactor(&n);
        assert!(cec(&n, &r).holds());
        assert!(r.gate_count() < before, "{} !< {}", r.gate_count(), before);
    }

    #[test]
    fn rewrite_works_on_xmg() {
        let mut n = Network::new(NetworkKind::Xmg);
        let xs = n.add_inputs(5);
        let m = n.maj3(xs[0], xs[1], xs[2]);
        let x = n.xor2(m, xs[3]);
        let y = n.maj3(x, xs[4], m);
        n.add_output(y);
        let r = rewrite(&n);
        assert!(cec(&n, &r).holds());
    }
}
