//! A small Boolean expression parser used by the genlib reader.
//!
//! Grammar (usual precedence, `!` strongest, then `&`, `^`, `|`):
//!
//! ```text
//! expr   := xorexp ('|' xorexp)*
//! xorexp := andexp ('^' andexp)*
//! andexp := unary ('&' unary)*
//! unary  := '!' unary | '(' expr ')' | var | '0' | '1'
//! var    := 'a'..'h'   (input index 0..7)
//! ```

use mch_logic::TruthTable;
use std::fmt;

/// Error produced when a Boolean expression cannot be parsed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseExprError {
    message: String,
    position: usize,
}

impl ParseExprError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseExprError {
            message: message.into(),
            position,
        }
    }

    /// Byte offset in the input at which parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at position {}", self.message, self.position)
    }
}

impl std::error::Error for ParseExprError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    num_vars: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, num_vars: usize) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            num_vars,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expr(&mut self) -> Result<TruthTable, ParseExprError> {
        let mut acc = self.xorexp()?;
        while self.peek() == Some(b'|') || self.peek() == Some(b'+') {
            self.bump();
            let rhs = self.xorexp()?;
            acc = acc.or(&rhs);
        }
        Ok(acc)
    }

    fn xorexp(&mut self) -> Result<TruthTable, ParseExprError> {
        let mut acc = self.andexp()?;
        while self.peek() == Some(b'^') {
            self.bump();
            let rhs = self.andexp()?;
            acc = acc.xor(&rhs);
        }
        Ok(acc)
    }

    fn andexp(&mut self) -> Result<TruthTable, ParseExprError> {
        let mut acc = self.unary()?;
        loop {
            match self.peek() {
                Some(b'&') | Some(b'*') => {
                    self.bump();
                    let rhs = self.unary()?;
                    acc = acc.and(&rhs);
                }
                // Juxtaposition (e.g. "ab") also means AND, as in genlib SOPs.
                Some(c) if c.is_ascii_lowercase() || c == b'(' || c == b'!' => {
                    let rhs = self.unary()?;
                    acc = acc.and(&rhs);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn unary(&mut self) -> Result<TruthTable, ParseExprError> {
        match self.peek() {
            Some(b'!') => {
                self.bump();
                Ok(self.unary()?.not())
            }
            Some(b'(') => {
                self.bump();
                let inner = self.expr()?;
                if self.bump() != Some(b')') {
                    return Err(ParseExprError::new("expected ')'", self.pos));
                }
                Ok(inner)
            }
            Some(b'0') => {
                self.bump();
                Ok(TruthTable::zeros(self.num_vars))
            }
            Some(b'1') => {
                self.bump();
                Ok(TruthTable::ones(self.num_vars))
            }
            Some(c) if c.is_ascii_lowercase() => {
                self.bump();
                let var = (c - b'a') as usize;
                if var >= self.num_vars {
                    return Err(ParseExprError::new(
                        format!("variable '{}' exceeds the declared input count", c as char),
                        self.pos,
                    ));
                }
                Ok(TruthTable::var(self.num_vars, var))
            }
            Some(c) => Err(ParseExprError::new(
                format!("unexpected character '{}'", c as char),
                self.pos,
            )),
            None => Err(ParseExprError::new("unexpected end of expression", self.pos)),
        }
    }
}

/// Parses a Boolean expression over variables `a..` into a truth table with
/// `num_vars` inputs.
///
/// # Errors
///
/// Returns [`ParseExprError`] on malformed input or when a variable exceeds
/// the declared input count.
///
/// # Example
///
/// ```
/// use mch_techlib::parse_expression;
///
/// let aoi21 = parse_expression("!((a & b) | c)", 3)?;
/// assert_eq!(aoi21.count_ones(), 3);
/// # Ok::<(), mch_techlib::ParseExprError>(())
/// ```
pub fn parse_expression(input: &str, num_vars: usize) -> Result<TruthTable, ParseExprError> {
    let mut p = Parser::new(input, num_vars);
    let t = p.expr()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ParseExprError::new("trailing input", p.pos));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_operators() {
        let and = parse_expression("a & b", 2).unwrap();
        assert_eq!(and.as_u64(), 0x8);
        let or = parse_expression("a | b", 2).unwrap();
        assert_eq!(or.as_u64(), 0xE);
        let xor = parse_expression("a ^ b", 2).unwrap();
        assert_eq!(xor.as_u64(), 0x6);
        let not = parse_expression("!a", 1).unwrap();
        assert_eq!(not.as_u64(), 0x1);
    }

    #[test]
    fn precedence_and_parentheses() {
        let f = parse_expression("a | b & c", 3).unwrap();
        let g = parse_expression("a | (b & c)", 3).unwrap();
        assert_eq!(f, g);
        let h = parse_expression("(a | b) & c", 3).unwrap();
        assert_ne!(f, h);
    }

    #[test]
    fn juxtaposition_is_and() {
        let f = parse_expression("ab | !c", 3).unwrap();
        let g = parse_expression("(a & b) | !c", 3).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn constants() {
        assert!(parse_expression("0", 2).unwrap().is_const0());
        assert!(parse_expression("1", 2).unwrap().is_const1());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_expression("a &", 2).is_err());
        assert!(parse_expression("a @ b", 2).is_err());
        assert!(parse_expression("(a", 2).is_err());
        assert!(parse_expression("c", 2).is_err());
        assert!(parse_expression("a b)", 2).is_err());
    }
}
