//! Standard-cell descriptions.

use mch_logic::TruthTable;
use std::fmt;

/// Index of a cell inside a [`crate::Library`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The raw index of the cell in its library.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A single combinational standard cell.
///
/// The timing model is deliberately simple — one pin-to-output delay shared by
/// all pins — because the mapper experiments only rely on *relative* cell
/// costs (see the substitution notes in `DESIGN.md`).
#[derive(Clone, PartialEq, Debug)]
pub struct Cell {
    name: String,
    function: TruthTable,
    area: f64,
    delay: f64,
}

impl Cell {
    /// Creates a cell from its name, single-output function, area (µm²) and
    /// pin-to-output delay (ps).
    ///
    /// # Panics
    ///
    /// Panics if `area` or `delay` is negative or not finite.
    pub fn new(name: impl Into<String>, function: TruthTable, area: f64, delay: f64) -> Self {
        assert!(area.is_finite() && area >= 0.0, "cell area must be non-negative");
        assert!(delay.is_finite() && delay >= 0.0, "cell delay must be non-negative");
        Cell {
            name: name.into(),
            function,
            area,
            delay,
        }
    }

    /// The cell name (e.g. `NAND2x1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's Boolean function over its input pins.
    pub fn function(&self) -> &TruthTable {
        &self.function
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.function.num_vars()
    }

    /// Cell area in µm².
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Pin-to-output delay in ps.
    pub fn delay(&self) -> f64 {
        self.delay
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} inputs, {:.3} um^2, {:.1} ps)",
            self.name,
            self.num_inputs(),
            self.area,
            self.delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_accessors() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let c = Cell::new("AND2x1", a.and(&b), 0.108, 20.0);
        assert_eq!(c.name(), "AND2x1");
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.area(), 0.108);
        assert_eq!(c.delay(), 20.0);
        assert!(c.to_string().contains("AND2x1"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_area_rejected() {
        let _ = Cell::new("BAD", TruthTable::var(1, 0), -1.0, 1.0);
    }
}
