//! A small genlib-style text format for describing cell libraries.
//!
//! Each non-empty, non-comment line describes one cell:
//!
//! ```text
//! GATE <name> <area> <delay> <inputs> <expression>
//! ```
//!
//! where `<inputs>` is the number of input pins and `<expression>` a Boolean
//! expression over `a`, `b`, `c`, … (see [`crate::parse_expression`]).
//! Lines starting with `#` are comments.

use crate::{parse_expression, Cell, Library, ParseExprError};
use std::fmt;

/// Error produced while parsing a genlib description.
#[derive(Clone, PartialEq, Debug)]
pub enum ParseGenlibError {
    /// A line did not have the expected `GATE name area delay inputs expr` shape.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        reason: String,
    },
    /// A cell expression failed to parse.
    BadExpression {
        /// 1-based line number.
        line: usize,
        /// The underlying expression error.
        source: ParseExprError,
    },
}

impl fmt::Display for ParseGenlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGenlibError::MalformedLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseGenlibError::BadExpression { line, source } => {
                write!(f, "line {line}: invalid expression: {source}")
            }
        }
    }
}

impl std::error::Error for ParseGenlibError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGenlibError::BadExpression { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses a genlib-style description into a [`Library`].
///
/// # Errors
///
/// Returns [`ParseGenlibError`] when a line is malformed or an expression is
/// invalid.
///
/// # Example
///
/// ```
/// use mch_techlib::parse_genlib;
///
/// let text = "GATE INV   0.05 10  1  !a\nGATE NAND2 0.08 15  2  !(a & b)\n";
/// let lib = parse_genlib("tiny", text)?;
/// assert_eq!(lib.len(), 2);
/// # Ok::<(), mch_techlib::ParseGenlibError>(())
/// ```
pub fn parse_genlib(name: &str, text: &str) -> Result<Library, ParseGenlibError> {
    let mut lib = Library::new(name);
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or_default();
        if keyword != "GATE" {
            return Err(ParseGenlibError::MalformedLine {
                line: line_no,
                reason: format!("expected 'GATE', found '{keyword}'"),
            });
        }
        let cell_name = parts.next().ok_or_else(|| ParseGenlibError::MalformedLine {
            line: line_no,
            reason: "missing cell name".into(),
        })?;
        let area: f64 = parse_number(parts.next(), "area", line_no)?;
        let delay: f64 = parse_number(parts.next(), "delay", line_no)?;
        let inputs: usize = parse_number::<usize>(parts.next(), "input count", line_no)?;
        let expr: String = parts.collect::<Vec<_>>().join(" ");
        if expr.is_empty() {
            return Err(ParseGenlibError::MalformedLine {
                line: line_no,
                reason: "missing expression".into(),
            });
        }
        let function = parse_expression(&expr, inputs)
            .map_err(|source| ParseGenlibError::BadExpression { line: line_no, source })?;
        lib.add_cell(Cell::new(cell_name, function, area, delay));
    }
    Ok(lib)
}

fn parse_number<T: std::str::FromStr>(
    token: Option<&str>,
    what: &str,
    line: usize,
) -> Result<T, ParseGenlibError> {
    let token = token.ok_or_else(|| ParseGenlibError::MalformedLine {
        line,
        reason: format!("missing {what}"),
    })?;
    token.parse().map_err(|_| ParseGenlibError::MalformedLine {
        line,
        reason: format!("invalid {what} '{token}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mch_logic::TruthTable;

    #[test]
    fn parses_small_library() {
        let text = "\n# comment\nGATE INV 0.05 10 1 !a\nGATE AOI21 0.11 20 3 !((a&b)|c)\n";
        let lib = parse_genlib("t", text).unwrap();
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.cell(lib.inverter()).name(), "INV");
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        assert!(!lib.matches(&a.and(&b).or(&c).not()).is_empty());
    }

    #[test]
    fn reports_malformed_lines() {
        assert!(matches!(
            parse_genlib("t", "CELL INV 0.05 10 1 !a"),
            Err(ParseGenlibError::MalformedLine { line: 1, .. })
        ));
        assert!(matches!(
            parse_genlib("t", "GATE INV x 10 1 !a"),
            Err(ParseGenlibError::MalformedLine { .. })
        ));
        assert!(matches!(
            parse_genlib("t", "GATE INV 0.05 10 1"),
            Err(ParseGenlibError::MalformedLine { .. })
        ));
    }

    #[test]
    fn reports_bad_expressions() {
        let err = parse_genlib("t", "GATE BAD 0.05 10 2 a &").unwrap_err();
        assert!(matches!(err, ParseGenlibError::BadExpression { line: 1, .. }));
        assert!(err.to_string().contains("line 1"));
    }
}
