//! Standard-cell technology libraries for ASIC mapping and the LUT model for
//! FPGA mapping.
//!
//! The crate provides:
//!
//! * [`Cell`] and [`Library`] — the gate library consumed by the ASIC mapper,
//!   with a Boolean-matching index over all pin permutations and polarities;
//! * a small genlib-style text format ([`parse_genlib`]) plus a Boolean
//!   expression parser;
//! * [`asap7_lite`] — an ASAP7-magnitude cell set used throughout the
//!   experiments (see `DESIGN.md` for the substitution rationale);
//! * [`LutLibrary`] — the K-LUT cost model for FPGA mapping.
//!
//! # Example
//!
//! ```
//! use mch_techlib::asap7_lite;
//! use mch_logic::TruthTable;
//!
//! let lib = asap7_lite();
//! let a = TruthTable::var(2, 0);
//! let b = TruthTable::var(2, 1);
//! // NAND is matched directly; the index reports zero extra inverters.
//! let matches = lib.matches(&a.and(&b).not());
//! assert!(matches.iter().any(|m| m.inverter_count() == 0));
//! ```

mod boolexpr;
mod cell;
mod genlib;
mod library;
mod lut;

pub use boolexpr::{parse_expression, ParseExprError};
pub use cell::{Cell, CellId};
pub use genlib::{parse_genlib, ParseGenlibError};
pub use library::{asap7_lite, CellMatch, Library};
pub use lut::LutLibrary;
