//! The cell library and its Boolean-matching index.

use crate::{parse_expression, Cell, CellId};
use mch_logic::TruthTable;
use std::collections::HashMap;

/// One way of implementing a cut function with a library cell.
///
/// Semantics: cut leaf `i` drives cell pin `perm[i]`, through an inverter when
/// bit `i` of `input_neg` is set; when `output_neg` is set the cell output is
/// inverted. The ASIC mapper accounts for the extra inverters in both area and
/// delay.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellMatch {
    cell: CellId,
    perm: Vec<usize>,
    input_neg: u32,
    output_neg: bool,
}

impl CellMatch {
    /// The matched cell.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// Pin placement: leaf `i` drives cell pin `perm[i]`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Bit mask of leaves that need an inverter before the cell pin.
    pub fn input_neg(&self) -> u32 {
        self.input_neg
    }

    /// Whether the cell output must be inverted.
    pub fn output_neg(&self) -> bool {
        self.output_neg
    }

    /// Total number of inverters this match requires.
    pub fn inverter_count(&self) -> usize {
        self.input_neg.count_ones() as usize + self.output_neg as usize
    }
}

/// A standard-cell library with a precomputed Boolean-matching index.
///
/// The index enumerates, for every cell, every input permutation, input
/// polarity and output polarity, and maps the resulting truth table to the
/// corresponding [`CellMatch`]. ASIC mapping then matches a cut by a single
/// hash lookup of its (support-reduced) function.
#[derive(Clone, Debug, Default)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
    index: HashMap<TruthTable, Vec<CellMatch>>,
    inverter: Option<CellId>,
    max_inputs: usize,
}

/// Two libraries are equal when their name and cell lists agree; the
/// matching index, designated inverter and input bound are pure functions of
/// the cells, so comparing them again would be redundant work.
impl PartialEq for Library {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.cells == other.cells
    }
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Self {
        Library {
            name: name.into(),
            cells: Vec::new(),
            index: HashMap::new(),
            inverter: None,
            max_inputs: 0,
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cells of the library.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell behind `id`.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks a cell up by name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name() == name)
            .map(|i| CellId(i as u32))
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(|i| CellId(i as u32))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Largest cell input count; the ASIC mapper limits cut sizes to this.
    pub fn max_inputs(&self) -> usize {
        self.max_inputs
    }

    /// The designated inverter cell (smallest single-input complement cell).
    ///
    /// # Panics
    ///
    /// Panics if the library contains no inverter.
    pub fn inverter(&self) -> CellId {
        self.inverter.expect("library must contain an inverter cell")
    }

    /// Area of the inverter cell.
    pub fn inverter_area(&self) -> f64 {
        self.cell(self.inverter()).area()
    }

    /// Delay of the inverter cell.
    pub fn inverter_delay(&self) -> f64 {
        self.cell(self.inverter()).delay()
    }

    /// Adds a cell and indexes every NPN variant of its function.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        let n = cell.num_inputs();
        self.max_inputs = self.max_inputs.max(n);
        // Track the cheapest inverter.
        if n == 1 && cell.function() == &TruthTable::var(1, 0).not() {
            let better = match self.inverter {
                None => true,
                Some(existing) => cell.area() < self.cell(existing).area(),
            };
            if better {
                self.inverter = Some(id);
            }
        }
        for perm in permutations(n) {
            for input_neg in 0..(1u32 << n) {
                for output_neg in [false, true] {
                    let variant = cell.function().transform(&perm, input_neg, output_neg);
                    let entry = CellMatch {
                        cell: id,
                        perm: perm.clone(),
                        input_neg,
                        output_neg,
                    };
                    let bucket = self.index.entry(variant).or_default();
                    if !bucket.contains(&entry) {
                        bucket.push(entry);
                    }
                }
            }
        }
        self.cells.push(cell);
        id
    }

    /// Returns every way of implementing `function` with one library cell
    /// (plus inverters). The function must be expressed over its support only.
    pub fn matches(&self, function: &TruthTable) -> &[CellMatch] {
        self.index.get(function).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns the cheapest-area match for `function`, counting the inverters
    /// each match requires.
    pub fn best_area_match(&self, function: &TruthTable) -> Option<(&CellMatch, f64)> {
        self.matches(function)
            .iter()
            .map(|m| {
                let cost =
                    self.cell(m.cell()).area() + m.inverter_count() as f64 * self.inverter_area();
                (m, cost)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Returns the lowest-delay match for `function`.
    pub fn best_delay_match(&self, function: &TruthTable) -> Option<(&CellMatch, f64)> {
        self.matches(function)
            .iter()
            .map(|m| {
                let extra = if m.inverter_count() > 0 {
                    self.inverter_delay()
                } else {
                    0.0
                };
                (m, self.cell(m.cell()).delay() + extra)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            rec(items, k + 1, out);
            items.swap(k, i);
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    rec(&mut items, 0, &mut out);
    out
}

/// Builds the ASAP7-magnitude cell library used by the experiments.
///
/// The set mirrors the combinational sub-set of a 7 nm standard-cell offering:
/// inverters/buffers, NAND/NOR/AND/OR up to four inputs, XOR/XNOR, AOI/OAI
/// complex gates, multiplexers and a three-input majority gate. Areas are in
/// µm² and delays in ps with magnitudes comparable to ASAP7 typical corners;
/// see `DESIGN.md` for why only the relative costs matter for reproduction.
pub fn asap7_lite() -> Library {
    let mut lib = Library::new("asap7-lite");
    let cells: &[(&str, usize, &str, f64, f64)] = &[
        ("INVx1", 1, "!a", 0.054, 12.0),
        ("BUFx2", 1, "a", 0.081, 18.0),
        ("NAND2x1", 2, "!(a & b)", 0.081, 15.0),
        ("NAND3x1", 3, "!(a & b & c)", 0.108, 21.0),
        ("NAND4x1", 4, "!(a & b & c & d)", 0.135, 27.0),
        ("NOR2x1", 2, "!(a | b)", 0.081, 17.0),
        ("NOR3x1", 3, "!(a | b | c)", 0.108, 24.0),
        ("NOR4x1", 4, "!(a | b | c | d)", 0.135, 31.0),
        ("AND2x2", 2, "a & b", 0.108, 20.0),
        ("AND3x2", 3, "a & b & c", 0.135, 25.0),
        ("AND4x2", 4, "a & b & c & d", 0.162, 30.0),
        ("OR2x2", 2, "a | b", 0.108, 22.0),
        ("OR3x2", 3, "a | b | c", 0.135, 27.0),
        ("OR4x2", 4, "a | b | c | d", 0.162, 33.0),
        ("XOR2x1", 2, "a ^ b", 0.162, 28.0),
        ("XNOR2x1", 2, "!(a ^ b)", 0.162, 28.0),
        ("AOI21x1", 3, "!((a & b) | c)", 0.108, 20.0),
        ("AOI22x1", 4, "!((a & b) | (c & d))", 0.135, 24.0),
        ("AOI211x1", 4, "!((a & b) | c | d)", 0.135, 27.0),
        ("OAI21x1", 3, "!((a | b) & c)", 0.108, 21.0),
        ("OAI22x1", 4, "!((a | b) & (c | d))", 0.135, 25.0),
        ("OAI211x1", 4, "!((a | b) & c & d)", 0.135, 28.0),
        ("AO21x1", 3, "(a & b) | c", 0.135, 25.0),
        ("AO22x1", 4, "(a & b) | (c & d)", 0.162, 29.0),
        ("OA21x1", 3, "(a | b) & c", 0.135, 26.0),
        ("OA22x1", 4, "(a | b) & (c | d)", 0.162, 30.0),
        ("MUX2x1", 3, "(a & b) | (!a & c)", 0.162, 26.0),
        ("MXI2x1", 3, "!((a & b) | (!a & c))", 0.148, 24.0),
        ("MAJ3x1", 3, "(a & b) | (a & c) | (b & c)", 0.189, 30.0),
        ("MAJI3x1", 3, "!((a & b) | (a & c) | (b & c))", 0.175, 28.0),
        ("XOR3x1", 3, "a ^ b ^ c", 0.243, 41.0),
        ("AOI31x1", 4, "!((a & b & c) | d)", 0.135, 26.0),
        ("OAI31x1", 4, "!((a | b | c) & d)", 0.135, 27.0),
        ("AOI221x1", 5, "!((a & b) | (c & d) | e)", 0.162, 30.0),
        ("OAI221x1", 5, "!((a | b) & (c | d) & e)", 0.162, 31.0),
        ("NAND2_B1x1", 2, "!(!a & b)", 0.095, 17.0),
        ("NOR2_B1x1", 2, "!(!a | b)", 0.095, 19.0),
    ];
    for &(name, inputs, expr, area, delay) in cells {
        let f = parse_expression(expr, inputs).expect("library expression parses");
        lib.add_cell(Cell::new(name, f, area, delay));
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asap7_lite_has_inverter_and_index() {
        let lib = asap7_lite();
        assert!(lib.len() > 30);
        assert_eq!(lib.cell(lib.inverter()).name(), "INVx1");
        assert_eq!(lib.max_inputs(), 5);
    }

    #[test]
    fn matches_and_function() {
        let lib = asap7_lite();
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let and = a.and(&b);
        let matches = lib.matches(&and);
        assert!(!matches.is_empty());
        // Direct AND cell exists, so the best area match needs no inverter.
        let (best, _) = lib.best_area_match(&and).unwrap();
        assert_eq!(best.inverter_count(), 0);
    }

    #[test]
    fn matches_cover_inverted_inputs() {
        let lib = asap7_lite();
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        // a & !b is not a library cell but is matched via NAND2_B1 / polarity variants.
        let f = a.and(&b.not());
        assert!(!lib.matches(&f).is_empty());
    }

    #[test]
    fn aoi_matches_without_inverters() {
        let lib = asap7_lite();
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let aoi = a.and(&b).or(&c).not();
        let (best, cost) = lib.best_area_match(&aoi).unwrap();
        assert_eq!(lib.cell(best.cell()).name(), "AOI21x1");
        assert!((cost - 0.108).abs() < 1e-9);
    }

    #[test]
    fn delay_match_prefers_fast_cells() {
        let lib = asap7_lite();
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        let nand = a.and(&b).not();
        let (best, delay) = lib.best_delay_match(&nand).unwrap();
        assert_eq!(lib.cell(best.cell()).name(), "NAND2x1");
        assert!((delay - 15.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_function_has_no_match() {
        let lib = asap7_lite();
        // A 5-input XOR-ish function that no cell implements.
        let mut f = TruthTable::var(5, 0);
        for v in 1..5 {
            f = f.xor(&TruthTable::var(5, v));
        }
        assert!(lib.matches(&f).is_empty());
    }

    #[test]
    fn match_semantics_reconstruct_function() {
        let lib = asap7_lite();
        let a = TruthTable::var(3, 0);
        let b = TruthTable::var(3, 1);
        let c = TruthTable::var(3, 2);
        let f = a.or(&b.not()).and(&c).not();
        for m in lib.matches(&f) {
            let redone = lib
                .cell(m.cell())
                .function()
                .transform(m.perm(), m.input_neg(), m.output_neg());
            assert_eq!(redone, f);
        }
        assert!(!lib.matches(&f).is_empty());
    }
}
