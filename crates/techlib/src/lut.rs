//! The LUT cost model used for FPGA mapping.

/// Cost model of a K-input lookup table.
///
/// The EPFL best-results challenge counts LUTs and logic levels, so the
/// default model charges one unit of area and one unit of delay per LUT.
///
/// # Example
///
/// ```
/// use mch_techlib::LutLibrary;
///
/// let lut6 = LutLibrary::k6();
/// assert_eq!(lut6.k(), 6);
/// assert_eq!(lut6.area(), 1.0);
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct LutLibrary {
    k: usize,
    area: f64,
    delay: f64,
}

impl LutLibrary {
    /// Creates a LUT model with `k` inputs and the given per-LUT area/delay.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `2..=8`.
    pub fn new(k: usize, area: f64, delay: f64) -> Self {
        assert!((2..=8).contains(&k), "LUT size must be in 2..=8");
        LutLibrary { k, area, delay }
    }

    /// The standard 6-input LUT with unit area and delay.
    pub fn k6() -> Self {
        LutLibrary::new(6, 1.0, 1.0)
    }

    /// The standard 4-input LUT with unit area and delay.
    pub fn k4() -> Self {
        LutLibrary::new(4, 1.0, 1.0)
    }

    /// Number of LUT inputs.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Area charged per LUT.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Delay charged per LUT level.
    pub fn delay(&self) -> f64 {
        self.delay
    }
}

impl Default for LutLibrary {
    fn default() -> Self {
        LutLibrary::k6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(LutLibrary::k6().k(), 6);
        assert_eq!(LutLibrary::k4().k(), 4);
        assert_eq!(LutLibrary::default(), LutLibrary::k6());
        let custom = LutLibrary::new(5, 2.0, 3.0);
        assert_eq!(custom.area(), 2.0);
        assert_eq!(custom.delay(), 3.0);
    }

    #[test]
    #[should_panic(expected = "LUT size")]
    fn rejects_out_of_range_k() {
        let _ = LutLibrary::new(12, 1.0, 1.0);
    }
}
