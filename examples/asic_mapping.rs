//! ASIC mapping of an EPFL-like benchmark through all Table-I flows.
//!
//! This is the workload the paper's introduction motivates: the same circuit
//! mapped with a single representation versus with mixed structural choices.
//!
//! Run with `cargo run --example asic_mapping --release -- max`
//! (any benchmark name from the suite works; `max` is the default).

use mch::benchmarks::benchmark;
use mch::core::{asic_flow_baseline, asic_flow_dch, asic_flow_mch, prepare_input, MchConfig};
use mch::mapper::MappingObjective;
use mch::techlib::asap7_lite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "max".to_string());
    let Some(circuit) = benchmark(&name) else {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(1);
    };
    let library = asap7_lite();
    let input = prepare_input(&circuit, 2);
    println!(
        "benchmark '{}': {} gates, depth {} after pre-optimization",
        name,
        input.gate_count(),
        input.depth()
    );
    println!("{:<22} {:>12} {:>12} {:>8}", "flow", "area um^2", "delay ps", "time s");

    let rows = [
        asic_flow_baseline(&input, &library, MappingObjective::Balanced),
        asic_flow_dch(&input, &library, MappingObjective::Balanced),
        asic_flow_mch(&input, &library, &MchConfig::balanced()),
        asic_flow_mch(&input, &library, &MchConfig::delay_oriented()),
        asic_flow_mch(&input, &library, &MchConfig::area_oriented()),
    ];
    for r in &rows {
        assert!(r.verified, "{} failed equivalence checking", r.flow);
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>8.2}",
            r.flow, r.area, r.delay, r.seconds
        );
    }
}
