//! FPGA 6-LUT mapping in the style of the EPFL best-results challenge
//! (Table II): area-focused LUT mapping with and without AIG+XMG mixed
//! structural choices.
//!
//! Run with `cargo run --example fpga_lut_mapping --release -- sin`.

use mch::benchmarks::benchmark;
use mch::core::{lut_flow_baseline, lut_flow_mch, MchConfig};
use mch::mapper::MappingObjective;
use mch::opt::compress2rs_like;
use mch::techlib::LutLibrary;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sin".to_string());
    let Some(circuit) = benchmark(&name) else {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(1);
    };
    // The challenge input: an optimized AIG of the circuit.
    let input = compress2rs_like(&circuit, 2);
    let lut6 = LutLibrary::k6();

    let incumbent = lut_flow_baseline(&input, &lut6, MappingObjective::Area);
    let challenger = lut_flow_mch(&input, &lut6, &MchConfig::lut_area());

    println!("benchmark '{}': {} AIG nodes", name, input.gate_count());
    println!(
        "single-representation mapping : {:4} LUTs, {:3} levels (verified = {})",
        incumbent.luts, incumbent.levels, incumbent.verified
    );
    println!(
        "MCH (AIG + XMG) mapping       : {:4} LUTs, {:3} levels (verified = {})",
        challenger.luts, challenger.levels, challenger.verified
    );
    if challenger.luts < incumbent.luts {
        println!("MCH sets a new best result for this circuit.");
    }
}
