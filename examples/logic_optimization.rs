//! MCH-based logic optimization (the Fig. 5 / Fig. 6 application): iterated
//! graph mapping of a circuit into an XMG, with MIG+XMG mixed choices helping
//! the optimization escape its local optimum.
//!
//! Run with `cargo run --example logic_optimization --release -- adder`.

use mch::benchmarks::benchmark;
use mch::choice::MchParams;
use mch::logic::{cec, NetworkKind, NetworkStats};
use mch::mapper::MappingObjective;
use mch::opt::{iterate_graph_map, iterate_graph_map_mch};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "adder".to_string());
    let Some(circuit) = benchmark(&name) else {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(1);
    };
    println!("input: {}", NetworkStats::of(&circuit));

    let objective = MappingObjective::Area;
    let baseline = iterate_graph_map(&circuit, NetworkKind::Xmg, objective, 4);
    println!(
        "graph mapping (XMG only)  : {} nodes, {} levels after {} iterations",
        baseline.gate_count(),
        baseline.depth(),
        baseline.iterations
    );

    let params = MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]);
    let with_mch = iterate_graph_map_mch(&circuit, NetworkKind::Xmg, &params, objective, 4);
    println!(
        "graph mapping with MCH    : {} nodes, {} levels after {} iterations",
        with_mch.gate_count(),
        with_mch.depth(),
        with_mch.iterations
    );

    assert!(cec(&circuit, &baseline.network).holds());
    assert!(cec(&circuit, &with_mch.network).holds());
    println!("both optimized networks verified equivalent to the input.");
}
