//! A long-running batched mapping service: one persistent [`MappingService`]
//! serves rounds of mixed big/small jobs whose flow phases all execute on
//! the shared worker pool, so workers steal work *across* circuits and the
//! shared NPN store amortises synthesis across jobs.
//!
//! Run with `cargo run --example mch_serve --release`. Environment knobs:
//!
//! - `MCH_SERVE_ROUNDS` — number of batches to serve (default 3).
//! - `MCH_SERVE_THREADS` — per-job thread budget (default: host cores).
//!
//! Every job's output is byte-identical to a solo run of the same job; the
//! example rechecks that on the final round.

use mch::benchmarks::{adder, demo_adder_gt, multiplier, square, voter};
use mch::core::{Job, JobOutput, MappingService, MchConfig};
use mch::io::{write_lut_blif, write_verilog};
use mch::techlib::{asap7_lite, LutLibrary};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One round's batch: two batch-threshold-clearing circuits plus small fry,
/// mixing LUT and ASIC targets. `round` is folded into the names only — the
/// work is identical every round, which is what makes the per-round
/// throughput comparable (round 1 is cold, later rounds hit the warm store).
fn round_batch(round: usize, threads: usize) -> Vec<Job> {
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    vec![
        Job::lut(
            format!("r{round}/mul12-lut"),
            multiplier(12),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::lut(
            format!("r{round}/adder16-lut"),
            adder(16),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::asic(
            format!("r{round}/voter63-asic"),
            voter(63),
            lib.clone(),
            MchConfig::balanced().with_threads(threads),
        ),
        Job::asic(
            format!("r{round}/square8-asic"),
            square(8),
            lib,
            MchConfig::area_oriented().with_threads(threads),
        ),
        Job::lut(
            format!("r{round}/demo-lut"),
            demo_adder_gt(),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
    ]
}

fn bytes_of(out: &JobOutput) -> String {
    match out {
        JobOutput::Asic(r) => write_verilog(&r.netlist, &asap7_lite()),
        JobOutput::Lut(r) => write_lut_blif(&r.netlist),
        JobOutput::Sweep(reports) => reports
            .iter()
            .map(|r| match &r.outcome {
                Ok(out) => format!("{}:\n{}", r.name, bytes_of(out)),
                Err(e) => format!("{}: error {e}", r.name),
            })
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

fn main() {
    let rounds = env_usize("MCH_SERVE_ROUNDS", 3);
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let threads = env_usize("MCH_SERVE_THREADS", host);
    let service = MappingService::new();
    println!("mch_serve: {rounds} round(s), {threads} thread(s) per job, host has {host} core(s)");

    let started = Instant::now();
    for round in 1..=rounds {
        let batch = round_batch(round, threads);
        let n = batch.len();
        let t0 = Instant::now();
        let reports = service.run_batch(batch);
        let secs = t0.elapsed().as_secs_f64();
        for report in &reports {
            match &report.outcome {
                Ok(out) => {
                    assert!(out.verified(), "{} failed verification", report.name);
                    println!("  {:<22} ok      {:8.3}s", report.name, report.seconds);
                }
                Err(e) => println!("  {:<22} FAILED  {e}", report.name),
            }
        }
        println!(
            "round {round}: {n} circuits in {secs:.3}s = {:.2} circuits/sec",
            n as f64 / secs
        );
    }

    // Byte-identity spot check: the last round's outputs against solo runs.
    let solo = MappingService::new();
    let last = service.run_batch(round_batch(rounds + 1, threads));
    for (report, job) in last.iter().zip(round_batch(rounds + 1, threads)) {
        let batched = report.outcome.as_ref().map(bytes_of).unwrap_or_default();
        let alone = solo.run(job).outcome.as_ref().map(bytes_of).unwrap_or_default();
        assert_eq!(batched, alone, "{} diverged from its solo run", report.name);
    }
    println!("byte-identity check: batched outputs match solo runs");

    let stats = service.stats();
    println!(
        "served {} job(s) ({} failed) in {:.3}s; shared NPN store: {} classes, {} hits / {} misses",
        stats.jobs_succeeded + stats.jobs_failed,
        stats.jobs_failed,
        started.elapsed().as_secs_f64(),
        stats.shared_npn_classes,
        stats.shared_npn_hits,
        stats.shared_npn_misses
    );
}
