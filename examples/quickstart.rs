//! Quickstart: build a small circuit, create mixed structural choices and map
//! it to standard cells, comparing against the choice-free baseline.
//!
//! Run with `cargo run --example quickstart --release`.

use mch::core::{asic_flow_baseline, asic_flow_mch, MchConfig};
use mch::logic::{Network, NetworkKind, NetworkStats};
use mch::mapper::MappingObjective;
use mch::techlib::asap7_lite;

fn main() {
    // 1. Build a 4-bit adder-comparator as an AIG.
    let mut circuit = Network::with_name(NetworkKind::Aig, "quickstart");
    let a = circuit.add_inputs(4);
    let b = circuit.add_inputs(4);
    let mut carry = circuit.constant(false);
    let mut sum = Vec::new();
    for i in 0..4 {
        let (s, c) = circuit.full_adder(a[i], b[i], carry);
        sum.push(s);
        carry = c;
    }
    let any = circuit.or_reduce(&sum);
    circuit.add_output(any);
    circuit.add_output(carry);
    println!("input circuit: {}", NetworkStats::of(&circuit));

    // 2. Map it with and without mixed structural choices.
    let library = asap7_lite();
    let baseline = asic_flow_baseline(&circuit, &library, MappingObjective::Balanced);
    let mch = asic_flow_mch(&circuit, &library, &MchConfig::balanced());

    println!(
        "baseline  : area {:8.3} um^2, delay {:7.2} ps, verified = {}",
        baseline.area, baseline.delay, baseline.verified
    );
    println!(
        "MCH       : area {:8.3} um^2, delay {:7.2} ps, verified = {}",
        mch.area, mch.delay, mch.verified
    );
    println!(
        "gain      : area {:+.2}%, delay {:+.2}%",
        (baseline.area - mch.area) / baseline.area * 100.0,
        (baseline.delay - mch.delay) / baseline.delay * 100.0
    );
}
