//! Workspace facade for the MCH (Mixed Structural Choices) reproduction.
//!
//! This crate simply re-exports the member crates so that the root-level
//! `examples/` and `tests/` can exercise the whole public API through a single
//! dependency. See [`mch_core`] for the high-level flows.
//!
//! # Example
//!
//! ```
//! use mch::core::{MchConfig, MappingObjective};
//!
//! let config = MchConfig::balanced();
//! assert_eq!(config.objective, MappingObjective::Balanced);
//! ```

pub use mch_benchmarks as benchmarks;
pub use mch_choice as choice;
pub use mch_core as core;
pub use mch_cut as cut;
pub use mch_io as io;
pub use mch_logic as logic;
pub use mch_mapper as mapper;
pub use mch_opt as opt;
pub use mch_techlib as techlib;
