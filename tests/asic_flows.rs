//! Integration tests of the end-to-end ASIC flows (Table-I shape checks).

use mch::benchmarks::benchmark;
use mch::core::{asic_flow_baseline, asic_flow_dch, asic_flow_mch, prepare_input, MchConfig};
use mch::mapper::MappingObjective;
use mch::techlib::asap7_lite;

#[test]
fn all_flows_verify_on_control_benchmarks() {
    let library = asap7_lite();
    for name in ["int2float", "ctrl", "dec"] {
        let input = prepare_input(&benchmark(name).unwrap(), 1);
        let flows = [
            asic_flow_baseline(&input, &library, MappingObjective::Balanced),
            asic_flow_dch(&input, &library, MappingObjective::Balanced),
            asic_flow_mch(&input, &library, &MchConfig::balanced()),
            asic_flow_mch(&input, &library, &MchConfig::delay_oriented()),
            asic_flow_mch(&input, &library, &MchConfig::area_oriented()),
        ];
        for f in &flows {
            assert!(f.verified, "{name}: {} failed verification", f.flow);
            assert!(f.area > 0.0 && f.delay > 0.0, "{name}: {}", f.flow);
        }
    }
}

#[test]
fn mch_area_flow_beats_or_matches_baseline_area_on_arithmetic() {
    let library = asap7_lite();
    let input = prepare_input(&benchmark("max").unwrap(), 2);
    let baseline = asic_flow_baseline(&input, &library, MappingObjective::Area);
    let mch = asic_flow_mch(&input, &library, &MchConfig::area_oriented());
    assert!(mch.verified);
    assert!(
        mch.area <= baseline.area * 1.02 + 1e-9,
        "MCH area {} should not exceed baseline area {} by more than 2%",
        mch.area,
        baseline.area
    );
}

#[test]
fn mch_delay_flow_beats_or_matches_baseline_delay_on_arithmetic() {
    let library = asap7_lite();
    let input = prepare_input(&benchmark("max").unwrap(), 2);
    let baseline = asic_flow_baseline(&input, &library, MappingObjective::Delay);
    let mch = asic_flow_mch(&input, &library, &MchConfig::delay_oriented());
    assert!(mch.verified);
    assert!(
        mch.delay <= baseline.delay * 1.02 + 1e-9,
        "MCH delay {} should not exceed baseline delay {} by more than 2%",
        mch.delay,
        baseline.delay
    );
}

#[test]
fn objectives_trade_area_for_delay() {
    let library = asap7_lite();
    let input = prepare_input(&benchmark("adder").unwrap(), 1);
    let delay = asic_flow_mch(&input, &library, &MchConfig::delay_oriented());
    let area = asic_flow_mch(&input, &library, &MchConfig::area_oriented());
    assert!(delay.verified && area.verified);
    // The delay-oriented result must be at least as fast as the area-oriented
    // one; the area-oriented result at least as small as the delay-oriented.
    assert!(delay.delay <= area.delay + 1e-9);
    assert!(area.area <= delay.area + 1e-9);
}
