//! Deterministic chaos suite: seeded fault injection across every failpoint.
//!
//! Compiled only with `--features fault-injection`. Run it at both thread
//! counts (the CI chaos job does):
//!
//! ```sh
//! MCH_THREADS=1 cargo test --features fault-injection --test chaos_fault_injection -- --test-threads=1
//! MCH_THREADS=4 cargo test --features fault-injection --test chaos_fault_injection -- --test-threads=1
//! ```
//!
//! Asserted properties, per the reliability contract (`docs/RELIABILITY.md`):
//! no deadlock (every flow returns), structured errors (`WorkerPanic`
//! carrying the injected payload, never a raw unwind), pool reusability
//! (pristine flows byte-match after any injected failure), and
//! simulation-equivalent degraded outputs under combined budget + fault
//! pressure.
#![cfg(feature = "fault-injection")]

use mch::core::{FlowBudget, FlowError, MchConfig};
use mch::benchmarks::demo_adder_gt;
use mch::io::write_lut_blif;
use mch::logic::failpoint;
use mch::techlib::LutLibrary;
use std::sync::{Mutex, PoisonError};

/// Serializes chaos tests against each other: the failpoint registry is
/// process-global. (CI additionally runs this binary with
/// `--test-threads=1`; the gate keeps a plain `cargo test` run correct.)
static GATE: Mutex<()> = Mutex::new(());

/// Runs `body` with the registry gate held and the expected injected panics
/// silenced; always disarms afterwards, even if `body` itself panics.
fn with_chaos(body: impl FnOnce()) {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with(failpoint::PANIC_PREFIX));
        if !injected {
            eprintln!("{info}");
        }
    }));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    failpoint::disarm();
    std::panic::set_hook(prev_hook);
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
}

/// The thread counts exercised: the `MCH_THREADS` environment override (the
/// CI matrix axis) plus the fixed 1-vs-4 pair.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 4];
    if let Ok(env) = std::env::var("MCH_THREADS") {
        if let Ok(t) = env.parse::<usize>() {
            if !counts.contains(&t) {
                counts.push(t);
            }
        }
    }
    counts
}

fn lut_flow_at(threads: usize) -> Result<String, FlowError> {
    let net = demo_adder_gt();
    let lut = LutLibrary::k6();
    let config = MchConfig::lut_area().with_threads(threads);
    mch::core::try_lut_flow_mch(&net, &lut, &config).map(|r| {
        assert!(r.verified, "a surviving flow must verify");
        write_lut_blif(&r.netlist)
    })
}

/// Every failpoint that aborts in-flow work: firing its first hit must
/// surface as `FlowError::WorkerPanic` with the injected payload — and the
/// very next pristine flow must byte-match an never-faulted baseline.
#[test]
fn aborting_failpoints_yield_structured_errors_and_leave_the_pool_reusable() {
    with_chaos(|| {
        for threads in thread_counts() {
            let baseline = lut_flow_at(threads).expect("pristine flow");
            for site in ["cut::arena_grow", "npn::commit", "engine::round"] {
                failpoint::arm_exact(site, &[0]);
                let outcome = lut_flow_at(threads);
                failpoint::disarm();
                let err = match outcome {
                    Err(err) => err,
                    Ok(_) => panic!("failpoint {site} did not fire at {threads} threads"),
                };
                match &err {
                    FlowError::WorkerPanic { message } => {
                        assert!(
                            message.starts_with(failpoint::PANIC_PREFIX)
                                && message.contains(site),
                            "wrong payload for {site}: {message}"
                        );
                    }
                    other => panic!("expected WorkerPanic for {site}, got {other}"),
                }
                assert_eq!(
                    lut_flow_at(threads).expect("pool must stay reusable"),
                    baseline,
                    "{site} corrupted the next pristine flow at {threads} threads"
                );
            }
        }
    });
}

/// A flow over a circuit large enough (>= the batch threshold) that the
/// sharded-strash commit path genuinely runs at `threads > 1`, so the
/// `strash::*` failpoints are reachable.
fn big_lut_flow_at(threads: usize) -> Result<String, FlowError> {
    let net = mch::benchmarks::adder(16);
    let lut = LutLibrary::k6();
    let config = MchConfig::lut_area().with_threads(threads);
    mch::core::try_lut_flow_mch(&net, &lut, &config).map(|r| {
        assert!(r.verified, "a surviving flow must verify");
        write_lut_blif(&r.netlist)
    })
}

/// The sharded-strash failpoints: `strash::shard_claim` fires *inside* a
/// shard's locked critical section (deliberately poisoning that shard) and
/// `strash::link` fires during the coordinator's id-ordered linking. Both
/// must surface as structured `WorkerPanic`s — never a deadlock, even with a
/// poisoned shard mutex — and the next pristine flow must byte-match a
/// never-faulted baseline. At 1 thread no commit batch exists, so the sites
/// stay cold and the flow succeeds untouched.
#[test]
fn strash_faults_yield_structured_errors_and_identical_recovery() {
    with_chaos(|| {
        for threads in thread_counts() {
            let baseline = big_lut_flow_at(threads).expect("pristine flow");
            for site in ["strash::shard_claim", "strash::link"] {
                failpoint::arm_exact(site, &[0]);
                let outcome = big_lut_flow_at(threads);
                failpoint::disarm();
                if threads == 1 {
                    // The serial path commits against the plain strash and
                    // never claims: the failpoint must stay cold.
                    assert_eq!(outcome.expect("serial flow unaffected"), baseline);
                } else {
                    let err = match outcome {
                        Err(err) => err,
                        Ok(_) => panic!("failpoint {site} did not fire at {threads} threads"),
                    };
                    match &err {
                        FlowError::WorkerPanic { message } => assert!(
                            message.starts_with(failpoint::PANIC_PREFIX)
                                && message.contains(site),
                            "wrong payload for {site}: {message}"
                        ),
                        other => panic!("expected WorkerPanic for {site}, got {other}"),
                    }
                }
                // Recovery: a fresh flow builds a fresh batch — the poisoned
                // shard of the previous one must be unobservable.
                assert_eq!(
                    big_lut_flow_at(threads).expect("pool must stay reusable"),
                    baseline,
                    "{site} corrupted the next pristine flow at {threads} threads"
                );
            }
        }
    });
}

#[test]
fn pool_dispatch_fault_fails_the_flow_not_the_process() {
    with_chaos(|| {
        for threads in thread_counts() {
            let baseline = lut_flow_at(threads).expect("pristine flow");
            failpoint::arm_exact("pool::dispatch", &[0]);
            let outcome = lut_flow_at(threads);
            failpoint::disarm();
            if threads == 1 {
                // The serial path never dispatches pool jobs: the failpoint
                // stays cold and the flow must succeed untouched.
                assert_eq!(outcome.expect("serial flow unaffected"), baseline);
            } else {
                let err = outcome.expect_err("a dispatched job panicked");
                match &err {
                    FlowError::WorkerPanic { message } => assert!(
                        message.starts_with(failpoint::PANIC_PREFIX),
                        "wrong payload: {message}"
                    ),
                    other => panic!("expected WorkerPanic, got {other}"),
                }
            }
            // Reusability: the process-wide pool must serve the next flow
            // with identical results.
            assert_eq!(lut_flow_at(threads).expect("pool reusable"), baseline);
        }
    });
}

/// Worker deaths between jobs are absorbed: the coordinator help-drains,
/// dead workers respawn lazily, and the flow result is bit-identical.
#[test]
fn worker_deaths_are_invisible_to_flow_results() {
    with_chaos(|| {
        for threads in thread_counts() {
            let baseline = lut_flow_at(threads).expect("pristine flow");
            failpoint::arm_exact("pool::worker", &[0, 1]);
            let survived = lut_flow_at(threads).expect("worker death must not fail the flow");
            failpoint::disarm();
            assert_eq!(
                survived, baseline,
                "worker respawn changed the result at {threads} threads"
            );
        }
    });
}

/// A seeded density sweep over every failpoint at once: whatever fires, the
/// flow must terminate (no deadlock) with Ok-and-verified or a structured
/// error, and the pool must serve a pristine byte-identical flow afterwards.
#[test]
fn seeded_chaos_sweep_never_deadlocks_or_corrupts() {
    with_chaos(|| {
        for threads in thread_counts() {
            let baseline = lut_flow_at(threads).expect("pristine flow");
            for seed in 0..6 {
                failpoint::arm(seed, 0.02);
                let outcome = lut_flow_at(threads);
                failpoint::disarm();
                if let Err(e) = outcome {
                    assert!(
                        matches!(e, FlowError::WorkerPanic { .. }),
                        "chaos produced a non-panic error: {e}"
                    );
                }
                assert_eq!(
                    lut_flow_at(threads).expect("pool must recover"),
                    baseline,
                    "seed {seed} at {threads} threads corrupted later flows"
                );
            }
        }
    });
}

/// Budget degradation and fault pressure compose: with workers being killed
/// *and* a breaching budget, the degraded output is still produced, still
/// simulation-equivalent, and still deterministic across thread counts.
#[test]
fn degraded_flows_stay_equivalent_under_fault_pressure() {
    with_chaos(|| {
        let net = demo_adder_gt();
        let lut = LutLibrary::k6();
        let budget = FlowBudget::unlimited()
            .with_max_cut_arena_slots(net.len() * 2)
            .with_max_resynthesis_candidates(0);
        let mut serializations = Vec::new();
        for threads in thread_counts() {
            failpoint::arm_exact("pool::worker", &[0]);
            let config = MchConfig::lut_area().with_threads(threads);
            let result = mch::core::try_lut_flow_mch_with_budget(&net, &lut, &config, &budget)
                .expect("degraded flow must survive worker death");
            failpoint::disarm();
            assert!(result.degradation.degraded());
            assert!(result.verified, "degraded output must stay equivalent");
            serializations.push(write_lut_blif(&result.netlist));
        }
        for s in &serializations[1..] {
            assert_eq!(s, &serializations[0], "degraded output must be identical");
        }
    });
}
