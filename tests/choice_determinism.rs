//! Determinism of the plan/commit choice construction: `build_mch` and both
//! full flows at 1, 2, 4 and 8 worker threads must produce **identical**
//! choice networks (choice classes, deterministic statistics and the mixed
//! network, node for node) and identical mapped netlists, across AIG, XAG
//! and MIG inputs. Thread scheduling must never be observable in a result.
//!
//! Also sweeps `ChoiceNetwork::verify` over the random suite — every
//! recorded choice class must simulate equivalent — and pins the id-sorted
//! iteration order of `representatives()`.
//!
//! The commit-heavy profile (wide circuits, raised candidate cap, two
//! secondary representations) targets the sharded concurrent strash: commit
//! traffic dominates those builds, so any divergence in claim folds, bucket
//! reservations or link order shows up as a byte difference here.

use mch::benchmarks::random_logic;
use mch::choice::{build_mch, build_mch_with_stats, MchParams};
use mch::core::{asic_flow_mch, lut_flow_mch, MchConfig};
use mch::logic::{convert, Network, NetworkKind, NodeId, Prng};
use mch::techlib::{asap7_lite, LutLibrary};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// The `i`-th random network of the suite, cycled through the AIG, XAG and
/// MIG representations so the one-to-one templates and the resynthesis
/// strategies see every gate kind.
fn arbitrary_network(i: usize) -> Network {
    let mut rng = Prng::seed_from_u64(0xC401_CE00 + i as u64);
    let inputs = rng.gen_range(4..20);
    let outputs = rng.gen_range(1..6);
    let gates = rng.gen_range(80..400);
    let seed = rng.next_u64();
    let aig = random_logic("choice-prop", inputs, outputs, gates, seed);
    match i % 3 {
        0 => aig,
        1 => convert(&aig, NetworkKind::Xag),
        _ => convert(&aig, NetworkKind::Mig),
    }
}

#[test]
fn build_mch_is_identical_across_thread_counts() {
    for i in 0..9 {
        let net = arbitrary_network(i);
        for base in [
            MchParams::balanced(),
            MchParams::area_oriented(),
            MchParams::delay_oriented(),
        ] {
            let (serial_cn, serial_stats) =
                build_mch_with_stats(&net, &base.clone().with_threads(1));
            for threads in THREAD_COUNTS {
                let (cn, stats) =
                    build_mch_with_stats(&net, &base.clone().with_threads(threads));
                // Mixed network (node for node), choice classes and phases —
                // the ChoiceNetwork PartialEq covers all of it.
                assert_eq!(
                    serial_cn, cn,
                    "case {i}: {threads}-thread build diverged from serial"
                );
                // Deterministic statistics: choice counts, critical nodes,
                // NPN cache hits/classes. Only wall times may differ.
                assert_eq!(
                    serial_stats.timeless(),
                    stats.timeless(),
                    "case {i}: {threads}-thread stats diverged"
                );
            }
        }
    }
}

/// A wide random network: enough gates that the sharded strash genuinely
/// fans the claim phase out across workers at every tested thread count.
fn wide_arbitrary_network(i: usize) -> Network {
    let mut rng = Prng::seed_from_u64(0xC0_3317 + i as u64);
    let inputs = rng.gen_range(20..30);
    let outputs = rng.gen_range(4..8);
    let gates = rng.gen_range(500..800);
    let seed = rng.next_u64();
    let aig = random_logic("choice-commit-heavy", inputs, outputs, gates, seed);
    if i.is_multiple_of(2) {
        aig
    } else {
        convert(&aig, NetworkKind::Xag)
    }
}

#[test]
fn commit_heavy_builds_are_identical_across_thread_counts() {
    // Stress profile for the sharded concurrent commit: wide circuits, two
    // secondary representations (so the batched one-to-one claim/link path
    // runs) and a raised candidate cap so commit traffic — claims, bucket
    // reservations, id-ordered linking — dominates the build. Every thread
    // count must still produce the byte-identical choice network.
    for i in 0..4 {
        let net = wide_arbitrary_network(i);
        let mut base = MchParams::mixed(&[NetworkKind::Xag, NetworkKind::Xmg]);
        base.max_candidates_per_node = 8;
        let (serial_cn, serial_stats) = build_mch_with_stats(&net, &base.clone().with_threads(1));
        for threads in THREAD_COUNTS {
            let (cn, stats) = build_mch_with_stats(&net, &base.clone().with_threads(threads));
            assert_eq!(
                serial_cn, cn,
                "case {i}: {threads}-thread commit-heavy build diverged from serial"
            );
            assert_eq!(
                serial_stats.timeless(),
                stats.timeless(),
                "case {i}: {threads}-thread commit-heavy stats diverged"
            );
        }
    }
}

#[test]
fn commit_heavy_flows_are_identical_across_thread_counts() {
    // The same stress profile end to end: both technology-mapping flows over
    // a raised candidate cap must hand back identical netlists at every
    // thread count.
    let lib = asap7_lite();
    let lut = LutLibrary::k6();
    let net = wide_arbitrary_network(0);
    let commit_heavy = |mut config: MchConfig, threads: usize| {
        config.mch.max_candidates_per_node = 6;
        config.with_threads(threads)
    };
    let asic_serial = asic_flow_mch(&net, &lib, &commit_heavy(MchConfig::area_oriented(), 1));
    let lut_serial = lut_flow_mch(&net, &lut, &commit_heavy(MchConfig::lut_area(), 1));
    assert!(asic_serial.verified && lut_serial.verified);
    for threads in THREAD_COUNTS {
        let asic = asic_flow_mch(&net, &lib, &commit_heavy(MchConfig::area_oriented(), threads));
        assert_eq!(
            asic_serial.netlist, asic.netlist,
            "{threads}-thread commit-heavy ASIC flow diverged"
        );
        assert_eq!(asic_serial.area.to_bits(), asic.area.to_bits());
        assert_eq!(asic_serial.delay.to_bits(), asic.delay.to_bits());
        let fpga = lut_flow_mch(&net, &lut, &commit_heavy(MchConfig::lut_area(), threads));
        assert_eq!(
            lut_serial.netlist, fpga.netlist,
            "{threads}-thread commit-heavy LUT flow diverged"
        );
        assert_eq!((lut_serial.luts, lut_serial.levels), (fpga.luts, fpga.levels));
    }
}

#[test]
fn full_flows_are_identical_across_thread_counts() {
    let lib = asap7_lite();
    let lut = LutLibrary::k6();
    for i in 0..3 {
        let net = arbitrary_network(i);
        let asic_serial = asic_flow_mch(&net, &lib, &MchConfig::area_oriented().with_threads(1));
        let lut_serial = lut_flow_mch(&net, &lut, &MchConfig::lut_area().with_threads(1));
        assert!(asic_serial.verified && lut_serial.verified);
        for threads in THREAD_COUNTS {
            let asic =
                asic_flow_mch(&net, &lib, &MchConfig::area_oriented().with_threads(threads));
            assert_eq!(
                asic_serial.netlist, asic.netlist,
                "case {i}: {threads}-thread ASIC flow diverged"
            );
            assert_eq!(asic_serial.area.to_bits(), asic.area.to_bits(), "case {i}");
            assert_eq!(asic_serial.delay.to_bits(), asic.delay.to_bits(), "case {i}");
            let fpga = lut_flow_mch(&net, &lut, &MchConfig::lut_area().with_threads(threads));
            assert_eq!(
                lut_serial.netlist, fpga.netlist,
                "case {i}: {threads}-thread LUT flow diverged"
            );
            assert_eq!((lut_serial.luts, lut_serial.levels), (fpga.luts, fpga.levels));
        }
    }
}

#[test]
fn fused_flows_are_identical_across_thread_counts() {
    // The ASIC-guided fused LUT flow runs TWO cover problems per circuit, so
    // it has twice the surface for scheduling to leak into a result: the
    // guide cover's selection feeds candidate injection and ranking bias.
    // Every fusion mode must still be byte-identical at every thread count,
    // and Off must be byte-identical to the plain LUT flow.
    use mch::core::{lut_flow_mch_fused, FusionMode};
    let lib = asap7_lite();
    let lut = LutLibrary::k6();
    for i in 0..3 {
        let net = arbitrary_network(i);
        let plain_serial = lut_flow_mch(&net, &lut, &MchConfig::lut_area().with_threads(1));
        for mode in [FusionMode::Off, FusionMode::Bias, FusionMode::Inject, FusionMode::Full] {
            let config = |threads: usize| {
                MchConfig::lut_fusion().with_fusion(mode).with_threads(threads)
            };
            let serial = lut_flow_mch_fused(&net, &lut, &lib, &config(1));
            assert!(serial.verified, "case {i} ({mode:?}): not equivalent");
            if mode == FusionMode::Off {
                assert_eq!(
                    plain_serial.netlist, serial.netlist,
                    "case {i}: fusion Off diverged from the plain LUT flow"
                );
            }
            for threads in THREAD_COUNTS {
                let fused = lut_flow_mch_fused(&net, &lut, &lib, &config(threads));
                assert_eq!(
                    serial.netlist, fused.netlist,
                    "case {i} ({mode:?}): {threads}-thread fused flow diverged"
                );
                assert_eq!(
                    (serial.luts, serial.levels),
                    (fused.luts, fused.levels),
                    "case {i} ({mode:?}): {threads}-thread fused metrics diverged"
                );
            }
        }
    }
}

#[test]
fn verify_stays_empty_over_the_random_suite() {
    // Property sweep: every choice class the construction records — one-to-one
    // styled candidates, NPN-replayed resyntheses, MFFC rewrites — must
    // simulate equivalent to its representative, at serial and threaded
    // builds alike.
    for i in 0..12 {
        let net = arbitrary_network(i);
        let params = match i % 3 {
            0 => MchParams::balanced(),
            1 => MchParams::area_oriented(),
            _ => MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]),
        };
        for threads in [1, 4] {
            let cn = build_mch(&net, &params.clone().with_threads(threads));
            let bad = cn.verify(16, 0x0BAD_5EED ^ i as u64);
            assert!(
                bad.is_empty(),
                "case {i} ({threads} threads): {} inconsistent choice classes, first {:?}",
                bad.len(),
                bad.first()
            );
        }
    }
}

#[test]
fn representatives_are_id_sorted_for_every_build() {
    for i in 0..6 {
        let net = arbitrary_network(i);
        let cn = build_mch(&net, &MchParams::area_oriented());
        let reprs: Vec<NodeId> = cn.representatives().collect();
        assert!(
            reprs.windows(2).all(|w| w[0] < w[1]),
            "case {i}: representatives not strictly id-sorted"
        );
        // And every representative actually owns at least one choice.
        assert!(reprs.iter().all(|&r| !cn.choices_of(r).is_empty()));
    }
}
