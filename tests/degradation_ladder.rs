//! End-to-end tests of the budgeted degradation ladder.
//!
//! The size-based rungs are pure configuration transformations, so a
//! breached budget must produce the *same* degraded netlist at every thread
//! count (byte-identical serialization), the same pinned
//! `DegradationReport`, and an output that still passes combinational
//! equivalence checking against the input.

use mch::core::{DegradationStep, FlowBudget, MchConfig, StrategyClass};
use mch::benchmarks::demo_adder_gt;
use mch::techlib::{asap7_lite, LutLibrary};
use mch::io::{write_lut_blif, write_verilog};
use std::time::Duration;

/// A budget every demo-sized flow breaches on all size axes.
fn breaching_budget(network_len: usize) -> FlowBudget {
    FlowBudget::unlimited()
        .with_max_cut_arena_slots(network_len * 2)
        .with_max_resynthesis_candidates(0)
}

#[test]
fn degraded_lut_flow_is_identical_at_every_thread_count() {
    let net = demo_adder_gt();
    let lut = LutLibrary::k6();
    let budget = breaching_budget(net.len());
    let mut serializations = Vec::new();
    for threads in [1, 2, 4] {
        let config = MchConfig::lut_area().with_threads(threads);
        let result = mch::core::try_lut_flow_mch_with_budget(&net, &lut, &config, &budget)
            .expect("breached budgets degrade, they do not fail");
        assert!(result.degradation.degraded(), "the budget must breach");
        assert!(
            result.verified,
            "degraded output must stay simulation-equivalent at {threads} threads"
        );
        serializations.push(write_lut_blif(&result.netlist));
    }
    assert_eq!(
        serializations[0], serializations[1],
        "degraded netlist differs between 1 and 2 threads"
    );
    assert_eq!(
        serializations[0], serializations[2],
        "degraded netlist differs between 1 and 4 threads"
    );
}

#[test]
fn degraded_asic_flow_is_identical_at_every_thread_count() {
    let net = demo_adder_gt();
    let lib = asap7_lite();
    let budget = breaching_budget(net.len());
    let mut serializations = Vec::new();
    for threads in [1, 2, 4] {
        let config = MchConfig::area_oriented().with_threads(threads);
        let result = mch::core::try_asic_flow_mch_with_budget(&net, &lib, &config, &budget)
            .expect("breached budgets degrade, they do not fail");
        assert!(result.degradation.degraded());
        assert!(result.verified);
        serializations.push(write_verilog(&result.netlist, &lib));
    }
    assert_eq!(serializations[0], serializations[1]);
    assert_eq!(serializations[0], serializations[2]);
}

#[test]
fn degraded_parallel_commit_is_identical_at_every_thread_count() {
    // A *partially* breaching budget over a circuit large enough for the
    // batched commit path: the candidate cap halves (a pure pre-flow config
    // transform) but resynthesis and snapshot mixing stay on, so the
    // degraded build still drives the sharded concurrent strash at
    // `threads > 1`. Budgets and the parallel commit must compose: the same
    // rungs taken, the same degraded netlist, at every thread count.
    let net = mch::benchmarks::adder(16);
    let lut = LutLibrary::k6();
    let budget = FlowBudget::unlimited().with_max_resynthesis_candidates(1000);
    let mut reports = Vec::new();
    let mut serializations = Vec::new();
    for threads in [1, 2, 4, 8] {
        let config = MchConfig::lut_area().with_threads(threads);
        let result = mch::core::try_lut_flow_mch_with_budget(&net, &lut, &config, &budget)
            .expect("a partially breached budget degrades, it does not fail");
        assert!(result.degradation.degraded(), "the cap must breach");
        assert!(
            !result
                .degradation
                .steps
                .contains(&DegradationStep::ResynthesisDisabled),
            "resynthesis must survive so the parallel commit actually runs"
        );
        assert!(result.verified, "degraded output must verify at {threads} threads");
        reports.push(result.degradation.steps.clone());
        serializations.push(write_lut_blif(&result.netlist));
    }
    for (i, (report, blif)) in reports.iter().zip(&serializations).enumerate().skip(1) {
        assert_eq!(report, &reports[0], "degradation report diverged (index {i})");
        assert_eq!(blif, &serializations[0], "degraded netlist diverged (index {i})");
    }
}

#[test]
fn forced_breach_report_is_pinned() {
    // `lut_area` starts from cut_limit 8, 3 candidates per node, one level
    // and one area strategy entry, and snapshot mixing on. A zero candidate
    // cap plus a 2-slots-per-node arena cap walks the entire ladder in its
    // fixed order; the mapper's cut limit is then re-shrunk against the
    // (larger) choice network. This exact sequence is the contract — an
    // unintended reorder of the ladder must fail this pin.
    let net = demo_adder_gt();
    let lut = LutLibrary::k6();
    let budget = breaching_budget(net.len());
    let result =
        mch::core::try_lut_flow_mch_with_budget(&net, &lut, &MchConfig::lut_area(), &budget)
            .expect("flow must degrade, not fail");
    let report = &result.degradation;
    assert!(!report.deadline_breached);
    assert_eq!(
        report.steps,
        vec![
            DegradationStep::CutLimitShrunk { from: 8, to: 4 },
            DegradationStep::CutLimitShrunk { from: 4, to: 2 },
            DegradationStep::CandidateCapReduced { from: 3, to: 1 },
            DegradationStep::StrategyDropped {
                library: StrategyClass::Area,
                remaining: 0
            },
            DegradationStep::StrategyDropped {
                library: StrategyClass::Level,
                remaining: 0
            },
            DegradationStep::ResynthesisDisabled,
            DegradationStep::SnapshotsDropped,
            DegradationStep::CutLimitShrunk { from: 8, to: 4 },
            DegradationStep::CutLimitShrunk { from: 4, to: 2 },
        ],
        "the degradation ladder took an unexpected path"
    );
}

#[test]
fn zero_deadline_falls_back_to_structural_mapping() {
    let net = demo_adder_gt();
    let lut = LutLibrary::k6();
    let budget = FlowBudget::unlimited().with_deadline(Duration::ZERO);
    let result = mch::core::try_lut_flow_mch_with_budget(&net, &lut, &MchConfig::lut_area(), &budget)
        .expect("deadline breach degrades, it does not fail");
    assert!(result.degradation.deadline_breached);
    assert!(result
        .degradation
        .steps
        .contains(&DegradationStep::DeadlineFallback));
    assert!(result.verified, "the fallback mapping must still verify");
    assert!(result.luts >= 1);
}

#[test]
fn unbreached_budget_changes_nothing() {
    let net = demo_adder_gt();
    let lut = LutLibrary::k6();
    let generous = FlowBudget::unlimited()
        .with_deadline(Duration::from_secs(3600))
        .with_max_cut_arena_slots(usize::MAX)
        .with_max_resynthesis_candidates(usize::MAX);
    let config = MchConfig::lut_area();
    let plain = mch::core::lut_flow_mch(&net, &lut, &config);
    let budgeted = mch::core::try_lut_flow_mch_with_budget(&net, &lut, &config, &generous)
        .expect("generous budget must not fail");
    assert!(!budgeted.degradation.degraded());
    assert_eq!(
        write_lut_blif(&plain.netlist),
        write_lut_blif(&budgeted.netlist),
        "an unbreached budget must be a byte-level no-op"
    );
}
