//! Structured-error behaviour of the fallible flow entry points.
//!
//! Malformed networks and libraries must surface as `FlowError` values from
//! every `try_*` flow, and the panicking convenience wrappers must panic
//! with the same rendered message — never with an internal assertion ten
//! frames deep.

use mch::core::{FlowError, Job, MappingService, MchConfig};
use mch::benchmarks::demo_adder_gt;
use mch::logic::{Network, NetworkKind, TruthTable};
use mch::mapper::MappingObjective;
use mch::techlib::{asap7_lite, Cell, Library, LutLibrary};

fn outputless() -> Network {
    let mut n = Network::new(NetworkKind::Aig);
    let a = n.add_input();
    let b = n.add_input();
    let _ = n.and2(a, b);
    n
}

fn constant_only() -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "constant-only");
    n.add_output(n.constant(true));
    n.add_output(n.constant(false));
    n
}

fn zero_gate() -> Network {
    let mut n = Network::with_name(NetworkKind::Aig, "zero-gate");
    let a = n.add_input();
    let b = n.add_input();
    n.add_output(a);
    n.add_output(!b);
    n
}

#[test]
fn outputless_networks_are_rejected_by_every_flow() {
    let n = outputless();
    let lib = asap7_lite();
    let lut = LutLibrary::k6();
    let cfg = MchConfig::balanced();
    let expect_invalid = |e: FlowError| {
        assert!(
            matches!(e, FlowError::InvalidNetwork { .. }),
            "expected InvalidNetwork, got {e}"
        );
    };
    expect_invalid(
        mch::core::try_asic_flow_baseline(&n, &lib, MappingObjective::Balanced).unwrap_err(),
    );
    expect_invalid(
        mch::core::try_asic_flow_dch(&n, &lib, MappingObjective::Balanced).unwrap_err(),
    );
    expect_invalid(mch::core::try_asic_flow_mch(&n, &lib, &cfg).unwrap_err());
    expect_invalid(
        mch::core::try_lut_flow_baseline(&n, &lut, MappingObjective::Area).unwrap_err(),
    );
    expect_invalid(mch::core::try_lut_flow_mch(&n, &lut, &MchConfig::lut_area()).unwrap_err());
    expect_invalid(mch::core::try_build_mch(&n, &cfg.mch).unwrap_err());
}

#[test]
fn defective_libraries_are_rejected_with_context() {
    let net = demo_adder_gt();

    let empty = Library::new("empty");
    let err = mch::core::try_asic_flow_mch(&net, &empty, &MchConfig::balanced()).unwrap_err();
    assert!(matches!(err, FlowError::InvalidLibrary { .. }));
    assert!(err.to_string().contains("no cells"), "got: {err}");

    let mut no_inverter = Library::new("no-inverter");
    let a = TruthTable::var(2, 0);
    let b = TruthTable::var(2, 1);
    no_inverter.add_cell(Cell::new("AND2", a.and(&b), 1.0, 10.0));
    let err =
        mch::core::try_asic_flow_baseline(&net, &no_inverter, MappingObjective::Area).unwrap_err();
    assert!(err.to_string().contains("inverter"), "got: {err}");

    // An inverted cost model: a wide cell strictly cheaper AND faster than
    // the best narrow cell breaks the monotonicity the rankings assume.
    let mut inverted = Library::new("inverted");
    inverted.add_cell(Cell::new("INV", TruthTable::var(1, 0).not(), 5.0, 50.0));
    let x = TruthTable::var(3, 0);
    let y = TruthTable::var(3, 1);
    let z = TruthTable::var(3, 2);
    inverted.add_cell(Cell::new("AND3", x.and(&y).and(&z), 1.0, 10.0));
    let err = mch::core::try_asic_flow_dch(&net, &inverted, MappingObjective::Balanced).unwrap_err();
    assert!(err.to_string().contains("monotone"), "got: {err}");
}

#[test]
fn panicking_wrappers_render_the_structured_error() {
    let n = outputless();
    let lib = asap7_lite();
    let caught = std::panic::catch_unwind(|| {
        mch::core::asic_flow_mch(&n, &lib, &MchConfig::balanced());
    })
    .expect_err("the convenience wrapper must panic on invalid input");
    let message = caught
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("invalid network"),
        "wrapper panic lost the structured message: {message}"
    );
}

#[test]
fn degenerate_networks_survive_the_fusion_path_without_panics() {
    // Constant-only and zero-gate networks have no gates for the ASIC guide
    // cover to harvest; both the plain fused entry point and the service job
    // must still return a verified trivial netlist (or a structured error),
    // never panic.
    for net in [constant_only(), zero_gate()] {
        for cfg in [
            MchConfig::lut_area(),
            MchConfig::lut_fusion(),
            MchConfig::lut_fusion().with_fusion(mch::core::FusionMode::Bias),
            MchConfig::lut_fusion().with_fusion(mch::core::FusionMode::Inject),
        ] {
            let label = format!("{}/{}", net.name(), cfg.name);
            let result =
                mch::core::try_lut_flow_mch_fused(&net, &LutLibrary::k6(), &asap7_lite(), &cfg)
                    .unwrap_or_else(|e| panic!("{label}: unexpected flow error: {e}"));
            assert!(result.verified, "{label}: trivial netlist not equivalent");
            // A complemented passthrough output may legitimately cost one
            // inverter LUT; anything beyond that is not a trivial netlist.
            assert!(
                result.luts <= net.output_count(),
                "{label}: gate-free input produced {} LUTs",
                result.luts
            );

            let service = MappingService::new();
            let reports = service.run_batch(vec![Job::lut_fused(
                label.clone(),
                net.clone(),
                LutLibrary::k6(),
                asap7_lite(),
                cfg.clone(),
            )]);
            let output = reports[0]
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{label}: service job failed: {e}"));
            assert!(output.verified(), "{label}: service netlist not equivalent");
        }
    }

    // Outputless networks still hit the validate_network preflight on the
    // fused entry points, same as every other flow.
    let err = mch::core::try_lut_flow_mch_fused(
        &outputless(),
        &LutLibrary::k6(),
        &asap7_lite(),
        &MchConfig::lut_fusion(),
    )
    .unwrap_err();
    assert!(
        matches!(err, FlowError::InvalidNetwork { .. }),
        "expected InvalidNetwork, got {err}"
    );
    let service = MappingService::new();
    let reports = service.run_batch(vec![Job::lut_fused(
        "outputless",
        outputless(),
        LutLibrary::k6(),
        asap7_lite(),
        MchConfig::lut_fusion(),
    )]);
    assert!(
        matches!(reports[0].outcome, Err(FlowError::InvalidNetwork { .. })),
        "service must surface the structured preflight error"
    );
}

#[test]
fn valid_inputs_flow_through_the_fallible_api() {
    let net = demo_adder_gt();
    let lut = LutLibrary::k6();
    let result = mch::core::try_lut_flow_mch(&net, &lut, &MchConfig::lut_area())
        .expect("a valid circuit must map");
    assert!(result.verified);
    assert!(!result.degradation.degraded());
    let choices = mch::core::try_build_mch(&net, &MchConfig::balanced().mch)
        .expect("a valid circuit must build choices");
    assert!(choices.network().len() >= net.len());
}
