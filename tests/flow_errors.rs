//! Structured-error behaviour of the fallible flow entry points.
//!
//! Malformed networks and libraries must surface as `FlowError` values from
//! every `try_*` flow, and the panicking convenience wrappers must panic
//! with the same rendered message — never with an internal assertion ten
//! frames deep.

use mch::core::{FlowError, MchConfig};
use mch::benchmarks::demo_adder_gt;
use mch::logic::{Network, NetworkKind, TruthTable};
use mch::mapper::MappingObjective;
use mch::techlib::{asap7_lite, Cell, Library, LutLibrary};

fn outputless() -> Network {
    let mut n = Network::new(NetworkKind::Aig);
    let a = n.add_input();
    let b = n.add_input();
    let _ = n.and2(a, b);
    n
}

#[test]
fn outputless_networks_are_rejected_by_every_flow() {
    let n = outputless();
    let lib = asap7_lite();
    let lut = LutLibrary::k6();
    let cfg = MchConfig::balanced();
    let expect_invalid = |e: FlowError| {
        assert!(
            matches!(e, FlowError::InvalidNetwork { .. }),
            "expected InvalidNetwork, got {e}"
        );
    };
    expect_invalid(
        mch::core::try_asic_flow_baseline(&n, &lib, MappingObjective::Balanced).unwrap_err(),
    );
    expect_invalid(
        mch::core::try_asic_flow_dch(&n, &lib, MappingObjective::Balanced).unwrap_err(),
    );
    expect_invalid(mch::core::try_asic_flow_mch(&n, &lib, &cfg).unwrap_err());
    expect_invalid(
        mch::core::try_lut_flow_baseline(&n, &lut, MappingObjective::Area).unwrap_err(),
    );
    expect_invalid(mch::core::try_lut_flow_mch(&n, &lut, &MchConfig::lut_area()).unwrap_err());
    expect_invalid(mch::core::try_build_mch(&n, &cfg.mch).unwrap_err());
}

#[test]
fn defective_libraries_are_rejected_with_context() {
    let net = demo_adder_gt();

    let empty = Library::new("empty");
    let err = mch::core::try_asic_flow_mch(&net, &empty, &MchConfig::balanced()).unwrap_err();
    assert!(matches!(err, FlowError::InvalidLibrary { .. }));
    assert!(err.to_string().contains("no cells"), "got: {err}");

    let mut no_inverter = Library::new("no-inverter");
    let a = TruthTable::var(2, 0);
    let b = TruthTable::var(2, 1);
    no_inverter.add_cell(Cell::new("AND2", a.and(&b), 1.0, 10.0));
    let err =
        mch::core::try_asic_flow_baseline(&net, &no_inverter, MappingObjective::Area).unwrap_err();
    assert!(err.to_string().contains("inverter"), "got: {err}");

    // An inverted cost model: a wide cell strictly cheaper AND faster than
    // the best narrow cell breaks the monotonicity the rankings assume.
    let mut inverted = Library::new("inverted");
    inverted.add_cell(Cell::new("INV", TruthTable::var(1, 0).not(), 5.0, 50.0));
    let x = TruthTable::var(3, 0);
    let y = TruthTable::var(3, 1);
    let z = TruthTable::var(3, 2);
    inverted.add_cell(Cell::new("AND3", x.and(&y).and(&z), 1.0, 10.0));
    let err = mch::core::try_asic_flow_dch(&net, &inverted, MappingObjective::Balanced).unwrap_err();
    assert!(err.to_string().contains("monotone"), "got: {err}");
}

#[test]
fn panicking_wrappers_render_the_structured_error() {
    let n = outputless();
    let lib = asap7_lite();
    let caught = std::panic::catch_unwind(|| {
        mch::core::asic_flow_mch(&n, &lib, &MchConfig::balanced());
    })
    .expect_err("the convenience wrapper must panic on invalid input");
    let message = caught
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("invalid network"),
        "wrapper panic lost the structured message: {message}"
    );
}

#[test]
fn valid_inputs_flow_through_the_fallible_api() {
    let net = demo_adder_gt();
    let lut = LutLibrary::k6();
    let result = mch::core::try_lut_flow_mch(&net, &lut, &MchConfig::lut_area())
        .expect("a valid circuit must map");
    assert!(result.verified);
    assert!(!result.degradation.degraded());
    let choices = mch::core::try_build_mch(&net, &MchConfig::balanced().mch)
        .expect("a valid circuit must build choices");
    assert!(choices.network().len() >= net.len());
}
