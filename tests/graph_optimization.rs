//! Integration tests of the MCH-based logic optimization (Fig. 6 shape
//! checks).

use mch::benchmarks::benchmark;
use mch::choice::MchParams;
use mch::logic::{cec, NetworkKind};
use mch::mapper::MappingObjective;
use mch::opt::{compress2rs_like, graph_map, iterate_graph_map, iterate_graph_map_mch};

#[test]
fn graph_mapping_between_all_representations_preserves_function() {
    let net = benchmark("int2float").unwrap();
    for target in NetworkKind::homogeneous() {
        let mapped = graph_map(&net, target, MappingObjective::Area);
        assert_eq!(mapped.kind(), target);
        assert!(cec(&net, &mapped).holds(), "{target} graph map broke equivalence");
    }
}

#[test]
fn mch_graph_optimization_is_equivalent_and_competitive() {
    let net = benchmark("adder").unwrap();
    let objective = MappingObjective::Area;
    let baseline = iterate_graph_map(&net, NetworkKind::Xmg, objective, 3);
    let params = MchParams::mixed(&[NetworkKind::Mig, NetworkKind::Xmg]);
    let with_mch = iterate_graph_map_mch(&net, NetworkKind::Xmg, &params, objective, 3);
    assert!(cec(&net, &baseline.network).holds());
    assert!(cec(&net, &with_mch.network).holds());
    assert!(
        with_mch.gate_count() as f64 <= baseline.gate_count() as f64 * 1.05 + 1.0,
        "MCH optimization should stay competitive: {} vs {}",
        with_mch.gate_count(),
        baseline.gate_count()
    );
}

#[test]
fn compress_then_graph_map_pipeline() {
    let net = benchmark("ctrl").unwrap();
    let optimized = compress2rs_like(&net, 2);
    assert!(cec(&net, &optimized).holds());
    assert!(optimized.gate_count() <= net.gate_count());
    let mig = graph_map(&optimized, NetworkKind::Mig, MappingObjective::Area);
    assert!(cec(&net, &mig).holds());
    let (and, xor, _) = mig.gate_profile();
    assert_eq!(and + xor, 0, "a MIG must contain only majority gates");
}
