//! Integration tests of the FPGA (6-LUT) flows (Table-II shape checks).

use mch::benchmarks::benchmark;
use mch::core::{lut_flow_baseline, lut_flow_mch, MchConfig};
use mch::mapper::MappingObjective;
use mch::opt::compress2rs_like;
use mch::techlib::LutLibrary;

#[test]
fn lut_flows_verify_on_a_mix_of_circuits() {
    let lut = LutLibrary::k6();
    for name in ["int2float", "priority", "dec"] {
        let input = compress2rs_like(&benchmark(name).unwrap(), 1);
        let base = lut_flow_baseline(&input, &lut, MappingObjective::Area);
        let mch = lut_flow_mch(&input, &lut, &MchConfig::lut_area());
        assert!(base.verified, "{name}: baseline failed verification");
        assert!(mch.verified, "{name}: MCH failed verification");
        assert!(base.luts > 0 && mch.luts > 0);
    }
}

#[test]
fn mch_lut_mapping_never_much_worse_than_baseline() {
    let lut = LutLibrary::k6();
    for name in ["sin", "int2float", "max"] {
        let input = compress2rs_like(&benchmark(name).unwrap(), 2);
        let base = lut_flow_baseline(&input, &lut, MappingObjective::Area);
        let mch = lut_flow_mch(&input, &lut, &MchConfig::lut_area());
        assert!(
            mch.luts as f64 <= base.luts as f64 * 1.05 + 1.0,
            "{name}: MCH {} LUTs vs baseline {} LUTs",
            mch.luts,
            base.luts
        );
    }
}

#[test]
fn smaller_k_increases_lut_count() {
    let input = compress2rs_like(&benchmark("int2float").unwrap(), 1);
    let k6 = lut_flow_baseline(&input, &LutLibrary::k6(), MappingObjective::Area);
    let k4 = lut_flow_baseline(&input, &LutLibrary::k4(), MappingObjective::Area);
    assert!(k4.luts >= k6.luts);
}

#[test]
fn delay_objective_gives_fewer_levels() {
    let input = compress2rs_like(&benchmark("priority").unwrap(), 1);
    let lut = LutLibrary::k6();
    let delay = lut_flow_baseline(&input, &lut, MappingObjective::Delay);
    let area = lut_flow_baseline(&input, &lut, MappingObjective::Area);
    assert!(delay.levels <= area.levels);
}
