//! End-to-end functional equivalence of every mapping configuration.
//!
//! Every mapped netlist — LUT and standard-cell — is simulated **directly**
//! (LUT masks / cell truth tables, no export through a logic network) against
//! the source network on seeded random input vectors, word-parallel like
//! `ChoiceNetwork::verify`, across the full configuration cross product:
//!
//! * network kinds: AIG × XAG × MIG (random networks + one structured adder),
//! * choice flows: baseline (no choices) × DCH (optimization snapshots) ×
//!   MCH (mixed structural choices),
//! * worker threads: 1 × 4,
//! * both mappers, balanced objective (the one that exercises required-time
//!   propagation) plus extra LUT coverage for area/delay objectives.
//!
//! The suite fails if any engine refactor miscovers a single cone: a wrong
//! candidate selection, a stale memoised arrival that survives extraction, or
//! a broken emission path all change some output word on 1024 random
//! patterns with overwhelming probability (and deterministically so, since
//! the stimulus is seeded).

use mch::benchmarks::random_logic;
use mch::choice::{build_mch, dch_from_snapshots, ChoiceNetwork, MchParams};
use mch::logic::{convert, simulate, Network, NetworkKind, Prng};
use mch::mapper::{map_asic, map_lut, AsicMapParams, LutMapParams, MappingObjective};
use mch::opt::{compress2rs_like, compress_round};
use mch::techlib::{asap7_lite, LutLibrary};

const THREADS: [usize; 2] = [1, 4];
/// 16 × 64 = 1024 random patterns per network.
const WORDS: usize = 16;

/// Seeded random stimulus, one row per primary input (the
/// `ChoiceNetwork::verify` recipe).
fn stimulus(inputs: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = Prng::seed_from_u64(seed);
    (0..inputs)
        .map(|_| (0..WORDS).map(|_| rng.next_u64()).collect())
        .collect()
}

/// The test networks: random AIG/XAG/MIG cones plus a structured carry chain
/// converted into each representation (deep required-time propagation).
fn networks() -> Vec<Network> {
    let mut nets = Vec::new();
    for (i, &kind) in [NetworkKind::Aig, NetworkKind::Xag, NetworkKind::Mig]
        .iter()
        .enumerate()
    {
        for seed in 0..2u64 {
            let mut rng = Prng::seed_from_u64(0xE9_0115_0000 + (i as u64) * 31 + seed);
            let inputs = rng.gen_range(6..20);
            let outputs = rng.gen_range(1..6);
            let gates = rng.gen_range(60..400);
            let aig = random_logic("equiv", inputs, outputs, gates, rng.next_u64());
            nets.push(convert(&aig, kind));
        }
        let mut adder = Network::with_name(NetworkKind::Aig, "equiv-adder");
        let a = adder.add_inputs(6);
        let b = adder.add_inputs(6);
        let mut carry = adder.constant(false);
        for j in 0..6 {
            let (s, c) = adder.full_adder(a[j], b[j], carry);
            adder.add_output(s);
            carry = c;
        }
        adder.add_output(carry);
        nets.push(convert(&adder, kind));
    }
    nets
}

/// The three choice flows of the paper for one subject network.
fn choice_flows(net: &Network) -> Vec<(&'static str, ChoiceNetwork)> {
    let snap1 = compress_round(net);
    let snap2 = compress2rs_like(&snap1, 2);
    vec![
        ("baseline", ChoiceNetwork::from_network(net)),
        ("DCH", dch_from_snapshots(net, &[snap1, snap2])),
        ("MCH", build_mch(net, &MchParams::area_oriented())),
    ]
}

#[test]
fn every_flow_network_thread_combination_maps_equivalently() {
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    let mut checked = 0usize;
    for (n, net) in networks().iter().enumerate() {
        let patterns = stimulus(net.input_count(), 0xC0DE_0000 + n as u64);
        let reference = simulate(net, &patterns);
        for (flow, choice) in choice_flows(net) {
            for threads in THREADS {
                let mapped_lut = map_lut(
                    &choice,
                    &lut,
                    &LutMapParams::new(MappingObjective::Balanced).with_threads(threads),
                );
                assert_eq!(
                    mapped_lut.simulate(&patterns),
                    reference,
                    "{} ({:?}, case {n}): {flow} LUT mapping with {threads} thread(s) \
                     is not equivalent to the source network",
                    net.name(),
                    net.kind(),
                );
                let mapped_asic = map_asic(
                    &choice,
                    &lib,
                    &AsicMapParams::new(MappingObjective::Balanced).with_threads(threads),
                );
                assert_eq!(
                    mapped_asic.simulate(&lib, &patterns),
                    reference,
                    "{} ({:?}, case {n}): {flow} ASIC mapping with {threads} thread(s) \
                     is not equivalent to the source network",
                    net.name(),
                    net.kind(),
                );
                checked += 2;
            }
        }
    }
    // 3 kinds × 3 networks × 3 flows × 2 thread counts × 2 mappers.
    assert_eq!(checked, 108, "configuration cross product shrank");
}

#[test]
fn fused_mappings_stay_equivalent_across_kinds_and_threads() {
    // The ASIC-guided fused LUT mapper injects guide cones as extra
    // candidates and biases the ranking; a bad injection (wrong leaves, a
    // stale users list, a cone emitted for the wrong root) changes some
    // output word here with overwhelming probability.
    use mch::mapper::{map_lut_fused, FusionMode};
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    let mut checked = 0usize;
    for (i, &kind) in [NetworkKind::Aig, NetworkKind::Xag, NetworkKind::Mig]
        .iter()
        .enumerate()
    {
        let aig = random_logic("equiv-fused", 14, 4, 300, 0xF05E_0000 + i as u64);
        let net = convert(&aig, kind);
        let patterns = stimulus(net.input_count(), 0xFEED + i as u64);
        let reference = simulate(&net, &patterns);
        let choice = build_mch(&net, &MchParams::area_oriented());
        for mode in [FusionMode::Bias, FusionMode::Inject, FusionMode::Full] {
            for threads in THREADS {
                let mapped = map_lut_fused(
                    &choice,
                    &lut,
                    &lib,
                    &LutMapParams::new(MappingObjective::Area)
                        .with_threads(threads)
                        .with_fusion(mode),
                );
                assert_eq!(
                    mapped.simulate(&patterns),
                    reference,
                    "{kind:?} fused LUT mapping ({mode:?}, {threads} thread(s)) \
                     is not equivalent to the source network"
                );
                checked += 1;
            }
        }
    }
    // 3 kinds × 3 fusion modes × 2 thread counts.
    assert_eq!(checked, 18, "fused configuration cross product shrank");
}

#[test]
fn objectives_and_engine_knobs_stay_equivalent() {
    // The cross product above fixes the balanced objective; here the
    // remaining engine paths — pure-area (no required times), strict-delay
    // (min-arrival feasibility), deep recovery and the exact-area pass — are
    // swept on one network per kind.
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    for (i, &kind) in [NetworkKind::Aig, NetworkKind::Xag, NetworkKind::Mig]
        .iter()
        .enumerate()
    {
        let aig = random_logic("equiv-knobs", 12, 4, 250, 0xAB5_0000 + i as u64);
        let net = convert(&aig, kind);
        let patterns = stimulus(net.input_count(), 0xF00D + i as u64);
        let reference = simulate(&net, &patterns);
        let choice = build_mch(&net, &MchParams::area_oriented());
        for objective in [
            MappingObjective::Delay,
            MappingObjective::Balanced,
            MappingObjective::Area,
        ] {
            for (rounds, exact) in [(0, false), (3, false), (8, false), (3, true)] {
                let mapped = map_lut(
                    &choice,
                    &lut,
                    &LutMapParams::new(objective)
                        .with_threads(1)
                        .with_area_rounds(rounds)
                        .with_exact_area(exact),
                );
                assert_eq!(
                    mapped.simulate(&patterns),
                    reference,
                    "{kind:?} LUT {objective:?} rounds={rounds} exact={exact}"
                );
                let mapped = map_asic(
                    &choice,
                    &lib,
                    &AsicMapParams::new(objective)
                        .with_threads(1)
                        .with_area_rounds(rounds)
                        .with_exact_area(exact),
                );
                assert_eq!(
                    mapped.simulate(&lib, &patterns),
                    reference,
                    "{kind:?} ASIC {objective:?} rounds={rounds} exact={exact}"
                );
            }
        }
    }
}
