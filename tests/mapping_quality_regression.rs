//! Regression pin of the `mapping_quality` bench geomeans.
//!
//! Recomputes exactly what `cargo bench -p mch_bench --bench mapping_quality`
//! measures on its default circuit list (`epfl_suite_small`): every circuit
//! mapped twice at the same cut limit — structural vs hybrid ranking —
//! through both mappers, aggregated as geometric-mean `hybrid / structural`
//! ratios. The four ratios are pinned to the committed `BENCH_mapping.json`
//! values at four decimals, so any quality drift introduced by an engine or
//! mapper refactor is caught by `cargo test` locally — not only by the CI
//! bench gate (which merely checks `<= 1.005`).
//!
//! If a deliberate quality improvement moves these numbers, update the pins
//! *and* the committed `BENCH_mapping.json` together.

use mch::benchmarks::epfl_suite_small;
use mch::cut::CutCost;
use mch::mapper::{
    map_asic_network, map_lut_network, AsicMapParams, LutMapParams, MappingObjective,
};
use mch::techlib::{asap7_lite, LutLibrary};

/// The committed `BENCH_mapping.json` geomeans, four decimals.
const PINNED_LUT_LEVELS: f64 = 0.7126;
const PINNED_LUT_COUNT: f64 = 0.7800;
const PINNED_ASIC_DELAY: f64 = 0.9930;
const PINNED_ASIC_AREA: f64 = 0.9933;

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = ratios.fold((0.0f64, 0usize), |(s, n), r| (s + r.ln(), n + 1));
    (sum / n as f64).exp()
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

#[test]
fn mapping_quality_geomeans_are_pinned() {
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    let objective = MappingObjective::Balanced;
    struct Row {
        s_luts: usize,
        s_levels: u32,
        h_luts: usize,
        h_levels: u32,
        s_area: f64,
        s_delay: f64,
        h_area: f64,
        h_delay: f64,
    }
    let mut rows = Vec::new();
    for b in epfl_suite_small() {
        let net = &b.network;
        let lut_params = LutMapParams::new(objective);
        let asic_params = AsicMapParams::new(objective);
        let s_lut = map_lut_network(net, &lut, &lut_params.with_ranking(CutCost::Structural));
        let h_lut = map_lut_network(net, &lut, &lut_params.with_ranking(CutCost::Hybrid));
        let s_asic = map_asic_network(net, &lib, &asic_params.with_ranking(CutCost::Structural));
        let h_asic = map_asic_network(net, &lib, &asic_params.with_ranking(CutCost::Hybrid));
        rows.push(Row {
            s_luts: s_lut.lut_count(),
            s_levels: s_lut.level_count(),
            h_luts: h_lut.lut_count(),
            h_levels: h_lut.level_count(),
            s_area: s_asic.area(&lib),
            s_delay: s_asic.delay(&lib),
            h_area: h_asic.area(&lib),
            h_delay: h_asic.delay(&lib),
        });
    }
    assert!(rows.len() >= 10, "suite shrank to {} circuits", rows.len());

    let lut_levels = geomean(rows.iter().map(|r| r.h_levels as f64 / r.s_levels as f64));
    let lut_count = geomean(rows.iter().map(|r| r.h_luts as f64 / r.s_luts as f64));
    let asic_delay = geomean(rows.iter().map(|r| r.h_delay / r.s_delay));
    let asic_area = geomean(rows.iter().map(|r| r.h_area / r.s_area));

    assert_eq!(
        round4(lut_levels),
        PINNED_LUT_LEVELS,
        "LUT-level geomean drifted: {lut_levels:.6}"
    );
    assert_eq!(
        round4(lut_count),
        PINNED_LUT_COUNT,
        "LUT-count geomean drifted: {lut_count:.6}"
    );
    assert_eq!(
        round4(asic_delay),
        PINNED_ASIC_DELAY,
        "ASIC-delay geomean drifted: {asic_delay:.6}"
    );
    assert_eq!(
        round4(asic_area),
        PINNED_ASIC_AREA,
        "ASIC-area geomean drifted: {asic_area:.6}"
    );
}
