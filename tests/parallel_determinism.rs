//! Determinism of the level-parallel engine: serial (`threads = 1`) and
//! multi-threaded (2, 4, 8 workers) runs must agree **exactly** — identical
//! cuts (leaves, functions, costs, arena layout), identical transferred
//! choice cuts and identical mapped netlists — on the random AIG/XAG/MIG
//! property suite. Thread scheduling must never be observable in a result.

use mch::benchmarks::random_logic;
use mch::choice::{build_mch, ChoiceNetwork, MchParams};
use mch::cut::{
    enumerate_cuts, enumerate_cuts_threaded, CutCost, CutCostModel, CutParams,
};
use mch::logic::{convert, Network, NetworkKind, Prng};
use mch::mapper::{
    map_asic, map_lut, prepare_cuts, AsicMapParams, LutMapParams, MappingObjective,
};
use mch::techlib::{asap7_lite, LutLibrary};

const CASES: usize = 18;
const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// The `i`-th random network of the suite, cycled through the AIG, XAG and
/// MIG representations so both the 2- and 3-fanin kernels are exercised.
fn arbitrary_network(i: usize) -> Network {
    let mut rng = Prng::seed_from_u64(0x9A7A_11E1 + i as u64);
    let inputs = rng.gen_range(4..24);
    let outputs = rng.gen_range(1..8);
    let gates = rng.gen_range(30..600);
    let seed = rng.next_u64();
    let aig = random_logic("par-prop", inputs, outputs, gates, seed);
    match i % 3 {
        0 => aig,
        1 => convert(&aig, NetworkKind::Xag),
        _ => convert(&aig, NetworkKind::Mig),
    }
}

#[test]
fn parallel_enumeration_is_byte_identical_to_serial_on_wide_circuits() {
    // Wide, structured circuits whose levels comfortably exceed the sharding
    // threshold, so the pool genuinely splits them (the random suite below
    // also covers narrow networks that fall back to the serial driver).
    let wide = [
        mch::benchmarks::voter(255),
        mch::benchmarks::multiplier(16),
        convert(&mch::benchmarks::voter(127), NetworkKind::Mig),
    ];
    let params = CutParams::new(6, 8).with_cost(CutCost::Hybrid);
    for (i, net) in wide.iter().enumerate() {
        let serial = enumerate_cuts(net, &params);
        for threads in THREAD_COUNTS {
            let parallel = enumerate_cuts_threaded(net, &params, &CutCostModel::unit(), threads);
            assert!(
                serial.identical(&parallel),
                "wide case {i}, {threads} threads: parallel diverged"
            );
        }
    }
}

#[test]
fn parallel_enumeration_is_byte_identical_to_serial() {
    for i in 0..CASES {
        let net = arbitrary_network(i);
        for params in [
            CutParams::new(4, 6),
            CutParams::new(6, 8).with_cost(CutCost::Hybrid),
        ] {
            let serial = enumerate_cuts(&net, &params);
            for threads in THREAD_COUNTS {
                let parallel =
                    enumerate_cuts_threaded(&net, &params, &CutCostModel::unit(), threads);
                assert!(
                    serial.identical(&parallel),
                    "case {i}, {threads} threads, {params:?}: parallel diverged"
                );
            }
        }
    }
}

#[test]
fn parallel_choice_transfer_is_identical_to_serial() {
    for i in 0..CASES / 2 {
        let net = arbitrary_network(i);
        let mch = build_mch(&net, &MchParams::area_oriented());
        let serial = prepare_cuts(&mch, 4, 8, CutCost::Hybrid, &CutCostModel::unit(), 1);
        for threads in THREAD_COUNTS {
            let parallel =
                prepare_cuts(&mch, 4, 8, CutCost::Hybrid, &CutCostModel::unit(), threads);
            assert!(
                serial.identical(&parallel),
                "case {i}, {threads} threads: choice transfer diverged"
            );
            assert_eq!(serial.wasted_slots(), parallel.wasted_slots(), "case {i}");
        }
    }
}

#[test]
fn parallel_mapping_results_are_identical_to_serial() {
    let lut = LutLibrary::k6();
    let lib = asap7_lite();
    for i in 0..CASES / 3 {
        let net = arbitrary_network(i);
        let mch = build_mch(&net, &MchParams::area_oriented());
        for choice in [&ChoiceNetwork::from_network(&net), &mch] {
            let lut_serial = map_lut(
                choice,
                &lut,
                &LutMapParams::new(MappingObjective::Balanced).with_threads(1),
            );
            let asic_serial = map_asic(
                choice,
                &lib,
                &AsicMapParams::new(MappingObjective::Balanced).with_threads(1),
            );
            for threads in THREAD_COUNTS {
                let lut_parallel = map_lut(
                    choice,
                    &lut,
                    &LutMapParams::new(MappingObjective::Balanced).with_threads(threads),
                );
                assert_eq!(
                    lut_serial, lut_parallel,
                    "case {i}, {threads} threads: LUT netlist diverged"
                );
                let asic_parallel = map_asic(
                    choice,
                    &lib,
                    &AsicMapParams::new(MappingObjective::Balanced).with_threads(threads),
                );
                assert_eq!(
                    asic_serial, asic_parallel,
                    "case {i}, {threads} threads: cell netlist diverged"
                );
            }
        }
    }
}
