//! Property-based tests over randomly generated networks: every major
//! transformation in the workspace must preserve the Boolean function of every
//! primary output.

use mch::benchmarks::random_logic;
use mch::choice::{build_mch, ChoiceNetwork, MchParams};
use mch::logic::{cec, convert, NetworkKind};
use mch::mapper::{map_asic, map_lut, AsicMapParams, LutMapParams, MappingObjective};
use mch::opt::{balance, compress2rs_like, graph_map, refactor, rewrite};
use mch::techlib::{asap7_lite, LutLibrary};
use proptest::prelude::*;

fn arbitrary_network() -> impl Strategy<Value = mch::logic::Network> {
    (2usize..9, 1usize..6, 10usize..120, any::<u64>()).prop_map(
        |(inputs, outputs, gates, seed)| random_logic("prop", inputs, outputs, gates, seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conversion_preserves_function(net in arbitrary_network(), kind_idx in 0usize..4) {
        let target = NetworkKind::homogeneous()[kind_idx];
        let converted = convert(&net, target);
        prop_assert!(cec(&net, &converted).holds());
    }

    #[test]
    fn optimization_passes_preserve_function(net in arbitrary_network()) {
        prop_assert!(cec(&net, &balance(&net)).holds());
        prop_assert!(cec(&net, &rewrite(&net)).holds());
        prop_assert!(cec(&net, &refactor(&net)).holds());
        prop_assert!(cec(&net, &compress2rs_like(&net, 2)).holds());
    }

    #[test]
    fn mch_choices_are_functionally_consistent(net in arbitrary_network()) {
        let mch = build_mch(&net, &MchParams::area_oriented());
        prop_assert!(mch.verify(16, 7).is_empty());
        prop_assert!(cec(&net, &mch.network().cleanup()).holds());
    }

    #[test]
    fn lut_mapping_preserves_function(net in arbitrary_network()) {
        let mapped = map_lut(
            &ChoiceNetwork::from_network(&net),
            &LutLibrary::k6(),
            &LutMapParams::new(MappingObjective::Area),
        );
        prop_assert!(cec(&net, &mapped.to_network()).holds());
    }

    #[test]
    fn choice_aware_asic_mapping_preserves_function(net in arbitrary_network()) {
        let library = asap7_lite();
        let mch = build_mch(&net, &MchParams::balanced());
        let mapped = map_asic(&mch, &library, &AsicMapParams::new(MappingObjective::Balanced));
        prop_assert!(cec(&net, &mapped.to_network(&library)).holds());
    }

    #[test]
    fn graph_mapping_preserves_function(net in arbitrary_network(), kind_idx in 0usize..4) {
        let target = NetworkKind::homogeneous()[kind_idx];
        let mapped = graph_map(&net, target, MappingObjective::Area);
        prop_assert!(cec(&net, &mapped).holds());
    }
}
