//! Property-based tests over randomly generated networks: every major
//! transformation in the workspace must preserve the Boolean function of every
//! primary output, and every enumerated cut must carry the correct function.
//!
//! The workspace is dependency-free, so instead of an external property
//! framework the tests drive a deterministic seeded generator through a fixed
//! number of cases; failures print the offending generator parameters so a
//! case can be replayed as a unit test.

use mch::benchmarks::random_logic;
use mch::choice::{build_mch, ChoiceNetwork, MchParams};
use mch::cut::{enumerate_cuts, legacy_enumerate_cuts, CutCost, CutParams};
use mch::logic::{cec, convert, simulate_nodes, Network, NetworkKind, NodeId, Prng};
use mch::mapper::{
    map_asic, map_lut, map_lut_network, AsicMapParams, LutMapParams, MappingObjective,
};
use mch::opt::{balance, compress2rs_like, graph_map, refactor, rewrite};
use mch::techlib::{asap7_lite, LutLibrary};

const CASES: usize = 24;

/// Generates the `i`-th random test network, mirroring the parameter ranges
/// the previous proptest strategy drew from.
fn arbitrary_network(i: usize) -> Network {
    let mut rng = Prng::seed_from_u64(0xA11C_E000 + i as u64);
    let inputs = rng.gen_range(2..9);
    let outputs = rng.gen_range(1..6);
    let gates = rng.gen_range(10..120);
    let seed = rng.next_u64();
    random_logic("prop", inputs, outputs, gates, seed)
}

fn for_each_case(mut f: impl FnMut(usize, Network)) {
    for i in 0..CASES {
        f(i, arbitrary_network(i));
    }
}

#[test]
fn conversion_preserves_function() {
    for_each_case(|i, net| {
        let target = NetworkKind::homogeneous()[i % 4];
        let converted = convert(&net, target);
        assert!(cec(&net, &converted).holds(), "case {i} → {target:?}");
    });
}

#[test]
fn optimization_passes_preserve_function() {
    for_each_case(|i, net| {
        assert!(cec(&net, &balance(&net)).holds(), "balance, case {i}");
        assert!(cec(&net, &rewrite(&net)).holds(), "rewrite, case {i}");
        assert!(cec(&net, &refactor(&net)).holds(), "refactor, case {i}");
        assert!(
            cec(&net, &compress2rs_like(&net, 2)).holds(),
            "compress2rs, case {i}"
        );
    });
}

#[test]
fn mch_choices_are_functionally_consistent() {
    for_each_case(|i, net| {
        let mch = build_mch(&net, &MchParams::area_oriented());
        assert!(mch.verify(16, 7).is_empty(), "case {i}");
        assert!(cec(&net, &mch.network().cleanup()).holds(), "case {i}");
    });
}

#[test]
fn lut_mapping_preserves_function() {
    for_each_case(|i, net| {
        let mapped = map_lut(
            &ChoiceNetwork::from_network(&net),
            &LutLibrary::k6(),
            &LutMapParams::new(MappingObjective::Area),
        );
        assert!(cec(&net, &mapped.to_network()).holds(), "case {i}");
    });
}

#[test]
fn choice_aware_asic_mapping_preserves_function() {
    for_each_case(|i, net| {
        let library = asap7_lite();
        let mch = build_mch(&net, &MchParams::balanced());
        let mapped = map_asic(&mch, &library, &AsicMapParams::new(MappingObjective::Balanced));
        assert!(cec(&net, &mapped.to_network(&library)).holds(), "case {i}");
    });
}

#[test]
fn graph_mapping_preserves_function() {
    for_each_case(|i, net| {
        let target = NetworkKind::homogeneous()[i % 4];
        let mapped = graph_map(&net, target, MappingObjective::Area);
        assert!(cec(&net, &mapped).holds(), "case {i}");
    });
}

#[test]
fn hybrid_ranking_never_maps_deeper_than_structural() {
    // The hybrid cut ranking keeps the unit-delay-best cuts at every node, so
    // at the same cut limit the mapped LUT depth must never exceed what the
    // static (size, leaves) ordering achieves — and the mapping must of
    // course stay functionally correct.
    use mch::techlib::LutLibrary;
    for kind in [NetworkKind::Aig, NetworkKind::Xag, NetworkKind::Mig] {
        for i in 0..CASES {
            let net = convert(&arbitrary_network(i), kind);
            let lut = LutLibrary::k6();
            let base = LutMapParams::new(MappingObjective::Balanced);
            let structural =
                map_lut_network(&net, &lut, &base.with_ranking(CutCost::Structural));
            let hybrid = map_lut_network(&net, &lut, &base.with_ranking(CutCost::Hybrid));
            assert!(cec(&net, &hybrid.to_network()).holds(), "case {i} ({kind:?})");
            assert!(
                hybrid.level_count() <= structural.level_count(),
                "case {i} ({kind:?}): hybrid depth {} > structural depth {}",
                hybrid.level_count(),
                structural.level_count()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Cut-enumeration properties (inline representation vs. reference semantics).
// ---------------------------------------------------------------------------

/// Simulates the network once per node with exhaustive patterns over its cut
/// leaves and checks that the stored cut function agrees with the simulated
/// cone function for every minterm.
fn check_cut_functions(net: &Network, params: &CutParams, label: &str) {
    let cuts = enumerate_cuts(net, params);
    // One word of exhaustive patterns per input is enough because every test
    // network has < 2^6-ish inputs only at the cut level; instead simulate
    // node values with random patterns and evaluate the cut function on the
    // leaves' simulated values, which must reproduce the root's values.
    let mut rng = Prng::seed_from_u64(0xC0DE);
    let words = 4usize;
    let patterns: Vec<Vec<u64>> = (0..net.input_count())
        .map(|_| (0..words).map(|_| rng.next_u64()).collect())
        .collect();
    let values = simulate_nodes(net, &patterns);
    for id in net.gate_ids() {
        for cut in cuts.of(id).iter() {
            assert_eq!(cut.root(), id, "{label}: cut rooted elsewhere");
            assert!(cut.size() <= params.cut_size, "{label}: oversized cut");
            let leaves: Vec<NodeId> = cut.leaves().to_vec();
            assert!(
                leaves.windows(2).all(|w| w[0] < w[1]),
                "{label}: unsorted leaves at {id}"
            );
            // Evaluate the cut function bit-parallel over the simulated leaf
            // values; must equal the root's simulated values.
            for (w, &root_word) in values[id.index()].iter().enumerate() {
                for b in 0..64 {
                    let mut minterm = 0usize;
                    for (v, leaf) in leaves.iter().enumerate() {
                        if values[leaf.index()][w] >> b & 1 == 1 {
                            minterm |= 1 << v;
                        }
                    }
                    let expect = root_word >> b & 1 == 1;
                    assert_eq!(
                        cut.function().bit(minterm),
                        expect,
                        "{label}: wrong function at node {id}, cut {cut}"
                    );
                }
            }
        }
    }
}

#[test]
fn cut_functions_match_simulation_on_random_networks() {
    for kind in [NetworkKind::Aig, NetworkKind::Xag, NetworkKind::Mig] {
        for i in 0..8 {
            let net = convert(&arbitrary_network(i), kind);
            check_cut_functions(&net, &CutParams::new(4, 8), &format!("{kind:?}/k4"));
            check_cut_functions(&net, &CutParams::new(6, 8), &format!("{kind:?}/k6"));
        }
    }
}

#[test]
fn inline_enumeration_matches_legacy_semantics() {
    // k = 7 exercises the heap-table (`Big`) representation alongside the
    // default single-word k = 6 configuration.
    let configs = [CutParams::new(6, 8), CutParams::new(7, 4)];
    for kind in [NetworkKind::Aig, NetworkKind::Xag, NetworkKind::Mig] {
        for i in 0..8 {
            let net = convert(&arbitrary_network(i), kind);
            let params = configs[i % configs.len()];
            let new = enumerate_cuts(&net, &params);
            let old = legacy_enumerate_cuts(&net, &params);
            for id in net.node_ids() {
                let a = new.of(id);
                let b = old.of(id);
                assert_eq!(a.len(), b.len(), "cut count differs at {id} ({kind:?})");
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.leaves(), y.leaves(), "leaves differ at {id}");
                    assert_eq!(
                        x.function().words(),
                        y.function().words(),
                        "function differs at {id}"
                    );
                }
            }
        }
    }
}

#[test]
fn structural_fingerprints_match_reconstructions_and_separate_mutants() {
    // The warm-start cache indexes prepared flows by
    // `Network::structural_fingerprint`. Two properties carry it: equal
    // networks (rebuilds, clones) hash equal, and any structural mutation —
    // output polarity, output rewiring, an extra gate — changes the hash.
    for_each_case(|i, net| {
        let mut rng = Prng::seed_from_u64(0xF19E_4100 + i as u64);
        let base = net.structural_fingerprint();

        // Same seeded construction and a clone: equal networks, equal hash.
        assert_eq!(
            arbitrary_network(i).structural_fingerprint(),
            base,
            "case {i}: rebuilding the same network changed the fingerprint"
        );
        assert_eq!(net.clone().structural_fingerprint(), base, "case {i}: clone");

        // Output polarity flip.
        let oi = rng.gen_range(0..net.output_count());
        let mut flipped = net.clone();
        let o = flipped.output(oi);
        flipped.replace_output(oi, !o);
        assert_ne!(
            flipped.structural_fingerprint(),
            base,
            "case {i}: complementing output {oi} left the fingerprint unchanged"
        );

        // Output rewired to a (guaranteed different) signal.
        let mut rewired = net.clone();
        let replacement = rewired.input(rng.gen_range(0..rewired.input_count()));
        let target = if rewired.output(oi) == replacement {
            !replacement
        } else {
            replacement
        };
        rewired.replace_output(oi, target);
        assert_ne!(
            rewired.structural_fingerprint(),
            base,
            "case {i}: rewiring output {oi} left the fingerprint unchanged"
        );

        // An extra gate feeding an extra output.
        let mut grown = net.clone();
        let a = grown.input(rng.gen_range(0..grown.input_count()));
        let b = grown.input(rng.gen_range(0..grown.input_count()));
        let g = grown.and2(a, !b);
        grown.add_output(g);
        assert_ne!(
            grown.structural_fingerprint(),
            base,
            "case {i}: growing the network left the fingerprint unchanged"
        );
    });
}

#[test]
fn permuted_but_identical_constructions_fingerprint_equal() {
    // Strashing canonicalises commutative fanins, so building the same
    // random AND chain with every gate's operands swapped yields the same
    // node vector — and must yield the same fingerprint (this is what lets
    // the warm-start cache hit across independently constructed circuits).
    for i in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x9E23_7700 + i as u64);
        let n_inputs = rng.gen_range(3..8);
        let n_gates = rng.gen_range(5..40);
        // Pre-draw the construction plan so both builds share it.
        let mut plan: Vec<(usize, usize, bool)> = Vec::with_capacity(n_gates);
        for g in 0..n_gates {
            let pool = n_inputs + g;
            plan.push((rng.gen_range(0..pool), rng.gen_range(0..pool), rng.next_u64() & 1 == 1));
        }
        let build = |swap: bool| {
            let mut n = Network::with_name(NetworkKind::Aig, "fp-perm");
            let mut signals: Vec<_> = (0..n_inputs).map(|_| n.add_input()).collect();
            for &(ai, bi, neg) in &plan {
                let (a, b) = (signals[ai], if neg { !signals[bi] } else { signals[bi] });
                let g = if swap { n.and2(b, a) } else { n.and2(a, b) };
                signals.push(g);
            }
            let last = *signals.last().expect("at least one signal");
            n.add_output(last);
            n
        };
        let forward = build(false);
        let swapped = build(true);
        assert_eq!(forward, swapped, "case {i}: swapped construction diverged");
        assert_eq!(
            forward.structural_fingerprint(),
            swapped.structural_fingerprint(),
            "case {i}: equal networks fingerprinted differently"
        );
    }
}
