//! Consistency of reported flow statistics with the emitted netlists.
//!
//! `AsicFlowResult` / `LutFlowResult` carry both the netlist and headline
//! numbers (area, delay, LUT count, levels). This suite recomputes each
//! statistic **independently** from the emitted netlist — its own summation
//! and longest-path walks, not the netlist methods the flows call — and
//! asserts the reported numbers match exactly. A refactor that changes what
//! the mappers emit without updating what the flows report (or vice versa)
//! fails here.

use mch::benchmarks::benchmark;
use mch::core::{
    asic_flow_baseline, asic_flow_dch, asic_flow_mch, lut_flow_baseline, lut_flow_mch,
    AsicFlowResult, LutFlowResult, MchConfig,
};
use mch::mapper::{MappingObjective, NetRef};
use mch::opt::compress2rs_like;
use mch::techlib::{asap7_lite, Library, LutLibrary};

/// Independent recomputation of total cell area: plain sum over instances.
fn recompute_area(result: &AsicFlowResult, lib: &Library) -> f64 {
    result
        .netlist
        .gates()
        .iter()
        .map(|g| lib.cell(g.cell).area())
        .sum()
}

/// Independent recomputation of the critical path under the per-cell
/// pin-to-output delay model: longest arrival over the outputs.
fn recompute_delay(result: &AsicFlowResult, lib: &Library) -> f64 {
    let gates = result.netlist.gates();
    let mut arrival = vec![0.0f64; gates.len()];
    for (i, g) in gates.iter().enumerate() {
        let worst_in = g
            .fanins
            .iter()
            .map(|f| match f {
                NetRef::Gate(j) => arrival[*j],
                _ => 0.0,
            })
            .fold(0.0, f64::max);
        arrival[i] = worst_in + lib.cell(g.cell).delay();
    }
    result
        .netlist
        .outputs()
        .iter()
        .map(|o| match o {
            NetRef::Gate(i) => arrival[*i],
            _ => 0.0,
        })
        .fold(0.0, f64::max)
}

/// Independent recomputation of LUT levels: longest gate-edge path from any
/// input/constant to an output.
fn recompute_levels(result: &LutFlowResult) -> u32 {
    let luts = result.netlist.luts();
    let mut level = vec![0u32; luts.len()];
    for (i, l) in luts.iter().enumerate() {
        level[i] = 1 + l
            .fanins
            .iter()
            .map(|f| match f {
                NetRef::Gate(j) => level[*j],
                _ => 0,
            })
            .max()
            .unwrap_or(0);
    }
    result
        .netlist
        .outputs()
        .iter()
        .map(|o| match o {
            NetRef::Gate(i) => level[*i],
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

#[test]
fn asic_flow_results_match_their_netlists() {
    let lib = asap7_lite();
    for name in ["int2float", "cavlc"] {
        let input = compress2rs_like(&benchmark(name).unwrap(), 1);
        let flows = [
            asic_flow_baseline(&input, &lib, MappingObjective::Balanced),
            asic_flow_baseline(&input, &lib, MappingObjective::Area),
            asic_flow_dch(&input, &lib, MappingObjective::Balanced),
            asic_flow_mch(&input, &lib, &MchConfig::balanced()),
            asic_flow_mch(
                &input,
                &lib,
                &MchConfig::area_oriented().with_area_rounds(5).with_exact_area(true),
            ),
        ];
        for f in &flows {
            assert!(f.verified, "{name}/{}: flow did not verify", f.flow);
            let area = recompute_area(f, &lib);
            let delay = recompute_delay(f, &lib);
            assert_eq!(
                f.area.to_bits(),
                area.to_bits(),
                "{name}/{}: reported area {} != netlist area {}",
                f.flow,
                f.area,
                area
            );
            assert_eq!(
                f.delay.to_bits(),
                delay.to_bits(),
                "{name}/{}: reported delay {} != netlist delay {}",
                f.flow,
                f.delay,
                delay
            );
            // And the netlist's own accessors agree with the independent walk.
            assert_eq!(f.netlist.area(&lib).to_bits(), area.to_bits());
            assert_eq!(f.netlist.delay(&lib).to_bits(), delay.to_bits());
        }
    }
}

#[test]
fn lut_flow_results_match_their_netlists() {
    let lut = LutLibrary::k6();
    for name in ["int2float", "dec"] {
        let input = compress2rs_like(&benchmark(name).unwrap(), 1);
        let flows = [
            lut_flow_baseline(&input, &lut, MappingObjective::Area),
            lut_flow_baseline(&input, &lut, MappingObjective::Delay),
            lut_flow_mch(&input, &lut, &MchConfig::lut_area()),
            lut_flow_mch(
                &input,
                &lut,
                &MchConfig::lut_area().with_area_rounds(6).with_exact_area(true),
            ),
        ];
        for f in &flows {
            assert!(f.verified, "{name}/{}: flow did not verify", f.flow);
            assert_eq!(
                f.luts,
                f.netlist.luts().len(),
                "{name}/{}: reported LUT count disagrees with the netlist",
                f.flow
            );
            assert_eq!(
                f.levels,
                recompute_levels(f),
                "{name}/{}: reported level count disagrees with the netlist",
                f.flow
            );
            assert_eq!(f.netlist.level_count(), recompute_levels(f));
        }
    }
}
