//! Per-job budgets × batch composition for the mapping service.
//!
//! A budget belongs to exactly one job: a breached job walks the pinned,
//! deterministic degradation ladder (recorded on its own report) while an
//! unbudgeted sibling in the same batch is a byte-level no-op — and the
//! degraded job itself is byte-identical to its solo run, in every batch
//! composition and at every thread count.

use mch::benchmarks::{adder, demo_adder_gt};
use mch::core::{
    DegradationStep, FlowBudget, Job, JobOutput, JobReport, MappingService, MchConfig,
};
use mch::io::write_lut_blif;
use mch::techlib::LutLibrary;
use std::time::Duration;

fn lut_job(name: &str, big: bool, threads: usize) -> Job {
    let network = if big { adder(16) } else { demo_adder_gt() };
    Job::lut(
        name,
        network,
        LutLibrary::k6(),
        MchConfig::lut_area().with_threads(threads),
    )
}

/// A budget whose breach is deterministic: the zero deadline has already
/// passed when the post-choice check runs, on every machine.
fn zero_deadline() -> FlowBudget {
    FlowBudget::unlimited().with_deadline(Duration::ZERO)
}

/// A size budget that walks the resynthesis rungs of the ladder —
/// deterministic because it depends only on circuit sizes.
fn tight_size_budget(network_len: usize) -> FlowBudget {
    FlowBudget::unlimited()
        .with_max_cut_arena_slots(network_len * 2)
        .with_max_resynthesis_candidates(0)
}

fn unwrap_lut(report: &JobReport) -> &mch::core::LutFlowResult {
    let out = report
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("job {} failed: {e}", report.name));
    let r = match out {
        JobOutput::Lut(r) => r,
        _ => panic!("expected a LUT job"),
    };
    assert!(r.verified, "job {} must stay equivalent", report.name);
    r
}

#[test]
fn deadline_breach_degrades_one_job_and_leaves_the_sibling_untouched() {
    for threads in [1, 4] {
        // Solo baselines: the budgeted job alone, the unbudgeted job alone.
        let solo_budgeted = {
            let report =
                MappingService::new().run(lut_job("budgeted", true, threads).with_budget(zero_deadline()));
            let r = unwrap_lut(&report).clone();
            (write_lut_blif(&r.netlist), r.degradation)
        };
        let solo_plain = {
            let report = MappingService::new().run(lut_job("plain", false, threads));
            let r = unwrap_lut(&report);
            assert!(!r.degradation.degraded(), "unbudgeted job must not degrade");
            write_lut_blif(&r.netlist)
        };

        // Same two jobs in one batch.
        let service = MappingService::new();
        let reports = service.run_batch(vec![
            lut_job("budgeted", true, threads).with_budget(zero_deadline()),
            lut_job("plain", false, threads),
        ]);
        let budgeted = unwrap_lut(&reports[0]);
        assert!(budgeted.degradation.deadline_breached);
        assert!(budgeted
            .degradation
            .steps
            .contains(&DegradationStep::DeadlineFallback));
        assert_eq!(
            (write_lut_blif(&budgeted.netlist), budgeted.degradation.clone()),
            solo_budgeted,
            "budgeted job diverged from its solo run at {threads} threads"
        );
        let plain = unwrap_lut(&reports[1]);
        assert!(
            !plain.degradation.degraded(),
            "the sibling must not inherit the budget"
        );
        assert_eq!(
            write_lut_blif(&plain.netlist),
            solo_plain,
            "unbudgeted sibling is not a byte-level no-op at {threads} threads"
        );
    }
}

#[test]
fn size_budget_walks_the_pinned_ladder_in_any_batch_composition() {
    let threads = 2;
    let big_len = adder(16).len();
    // The budgeted job's pinned expectation: bytes + full degradation trace,
    // from a solo run.
    let solo = {
        let report = MappingService::new().run(
            lut_job("capped", true, threads).with_budget(tight_size_budget(big_len)),
        );
        let r = unwrap_lut(&report).clone();
        assert!(r.degradation.degraded(), "the size budget must bite");
        assert!(!r.degradation.deadline_breached, "size rungs only");
        (write_lut_blif(&r.netlist), r.degradation)
    };

    // Composition sweep: alone in a batch, first of three, last of three.
    let compositions: Vec<Vec<Job>> = vec![
        vec![lut_job("capped", true, threads).with_budget(tight_size_budget(big_len))],
        vec![
            lut_job("capped", true, threads).with_budget(tight_size_budget(big_len)),
            lut_job("s1", false, threads),
            lut_job("s2", false, threads),
        ],
        vec![
            lut_job("s1", false, threads),
            lut_job("s2", false, threads),
            lut_job("capped", true, threads).with_budget(tight_size_budget(big_len)),
        ],
    ];
    for jobs in compositions {
        let n = jobs.len();
        let service = MappingService::new();
        let reports = service.run_batch(jobs);
        let capped = reports
            .iter()
            .find(|r| r.name == "capped")
            .expect("capped job present");
        let r = unwrap_lut(capped);
        assert_eq!(
            (write_lut_blif(&r.netlist), r.degradation.clone()),
            solo,
            "degradation trace not pinned in a {n}-job batch"
        );
        for report in reports.iter().filter(|r| r.name != "capped") {
            assert!(
                !unwrap_lut(report).degradation.degraded(),
                "sibling {} inherited a budget it does not have",
                report.name
            );
        }
    }
}

#[test]
fn degraded_outputs_are_identical_across_thread_counts_in_batches() {
    let big_len = adder(16).len();
    let mut serializations = Vec::new();
    for threads in [1, 2, 4] {
        let service = MappingService::new();
        let reports = service.run_batch(vec![
            lut_job("capped", true, threads).with_budget(tight_size_budget(big_len)),
            lut_job("plain", false, threads),
        ]);
        let r = unwrap_lut(&reports[0]);
        assert!(r.degradation.degraded());
        serializations.push((write_lut_blif(&r.netlist), r.degradation.clone()));
    }
    for s in &serializations[1..] {
        assert_eq!(
            s, &serializations[0],
            "batched degraded output must be thread-count invariant"
        );
    }
}
