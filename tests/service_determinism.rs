//! The batching-is-invisible battery for the mapping service.
//!
//! Every job submitted to a [`MappingService`] must produce output
//! **byte-identical** to a solo run of that same job — at every thread
//! count, for every batch size, under every submission order, and whether
//! the shared NPN store is cold or warm. The suites below sweep threads
//! {1, 2, 4, 8}, batch sizes {1, 4, 16} and batch permutations, and pin the
//! per-job NPN cache statistics (counted in per-job commit order) against
//! private-cache builds.

use mch::benchmarks::{adder, demo_adder_gt, voter};
use mch::choice::{build_mch_with_stats, build_mch_with_stats_shared, SharedNpnCache};
use mch::core::{Job, JobReport, MappingService, MchConfig};
use mch::cut::WorkerPool;
use mch::io::{write_lut_blif, write_verilog};
use mch::techlib::{asap7_lite, Library, LutLibrary};
use std::sync::{Arc, Mutex, PoisonError};

/// The thread counts the determinism gate sweeps (the ISSUE's contract).
fn thread_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// A mixed big/small, ASIC/LUT job suite. `adder(16)` clears the batched
/// commit threshold, the rest exercise the serial paths alongside it.
fn job_suite(threads: usize) -> Vec<Job> {
    let lut = LutLibrary::k6();
    let lib: Library = asap7_lite();
    vec![
        Job::lut(
            "big-lut",
            adder(16),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::lut(
            "small-lut",
            demo_adder_gt(),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::asic(
            "small-asic",
            demo_adder_gt(),
            lib.clone(),
            MchConfig::balanced().with_threads(threads),
        ),
        Job::asic(
            "voter-asic",
            voter(9),
            lib,
            MchConfig::delay_oriented().with_threads(threads),
        ),
    ]
}

/// Serialises everything deterministic about a report: the netlist bytes,
/// the verification flag and the degradation trace. Wall times are excluded.
fn fingerprint(report: &JobReport) -> String {
    let out = report
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("job {} failed: {e}", report.name));
    assert!(out.verified(), "job {} did not verify", report.name);
    let lib = asap7_lite();
    let bytes = match out {
        mch::core::JobOutput::Asic(r) => write_verilog(&r.netlist, &lib),
        mch::core::JobOutput::Lut(r) => write_lut_blif(&r.netlist),
        mch::core::JobOutput::Sweep(_) => panic!("this suite has no sweep jobs"),
    };
    format!("{bytes}\n{:?}", out.degradation())
}

/// Solo baselines: each job on its own fresh service (cold shared store).
fn solo_fingerprints(threads: usize) -> Vec<String> {
    job_suite(threads)
        .into_iter()
        .map(|job| fingerprint(&MappingService::new().run(job)))
        .collect()
}

/// Byte-compares a batch's reports (already in submission order) against the
/// expected fingerprints.
fn assert_batch_matches(reports: &[JobReport], expected: &[String], what: &str) {
    assert_eq!(reports.len(), expected.len());
    for (report, want) in reports.iter().zip(expected) {
        assert_eq!(
            &fingerprint(report),
            want,
            "{what}: job {} diverged from its solo run",
            report.name
        );
    }
}

#[test]
fn solo_service_runs_match_the_plain_flow_api() {
    // The service layer (shared store included) must be invisible next to
    // the pre-existing one-shot flow API.
    for threads in [1, 4] {
        let lut = LutLibrary::k6();
        let config = MchConfig::lut_area().with_threads(threads);
        let plain = mch::core::try_lut_flow_mch(&adder(16), &lut, &config).expect("plain flow");
        let service = MappingService::new();
        let report = service.run(Job::lut("solo", adder(16), lut, config));
        let out = report.outcome.expect("service job");
        let r = out.as_lut().expect("lut job");
        assert_eq!(
            write_lut_blif(&r.netlist),
            write_lut_blif(&plain.netlist),
            "service wrapper changed bytes at {threads} threads"
        );
    }
}

#[test]
fn batched_jobs_match_solo_runs_across_threads_and_permutations() {
    for threads in thread_counts() {
        let solo = solo_fingerprints(threads);
        // Three submission orders of the same batch; reports come back in
        // submission order, so re-index the expectations per permutation.
        let orders: [[usize; 4]; 3] = [[0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]];
        for order in orders {
            let all = job_suite(threads);
            let mut slots: Vec<Option<Job>> = all.into_iter().map(Some).collect();
            let jobs: Vec<Job> = order.iter().map(|&i| slots[i].take().expect("once")).collect();
            let expected: Vec<String> = order.iter().map(|&i| solo[i].clone()).collect();
            let service = MappingService::new();
            let first = service.run_batch(jobs.clone());
            assert_batch_matches(&first, &expected, &format!("cold batch {order:?} @{threads}t"));
            // Same batch again on the now-warm shared store: still identical.
            let warm = service.run_batch(jobs);
            assert_batch_matches(&warm, &expected, &format!("warm batch {order:?} @{threads}t"));
        }
    }
}

#[test]
fn batch_sizes_one_four_sixteen_are_invisible() {
    let threads = 2;
    let solo = solo_fingerprints(threads);
    // Sixteen jobs cycling the suite (fresh Job values, distinct names).
    let sixteen = || -> Vec<(Job, String)> {
        (0..16)
            .map(|i| {
                let mut job = job_suite(threads).swap_remove(i % 4);
                job.name = format!("{}-{i}", job.name);
                (job, solo[i % 4].clone())
            })
            .collect()
    };
    for batch_size in [1usize, 4, 16] {
        let service = MappingService::new();
        let mut pending = sixteen();
        while !pending.is_empty() {
            let take = batch_size.min(pending.len());
            let chunk: Vec<(Job, String)> = pending.drain(..take).collect();
            let (jobs, expected): (Vec<Job>, Vec<String>) = chunk.into_iter().unzip();
            let reports = service.run_batch(jobs);
            assert_batch_matches(&reports, &expected, &format!("batch size {batch_size}"));
        }
        let stats = service.stats();
        assert_eq!(stats.jobs_succeeded, 16);
        assert_eq!(stats.jobs_failed, 0);
    }
}

#[test]
fn in_flight_cap_changes_scheduling_not_bytes() {
    let threads = 2;
    let solo = solo_fingerprints(threads);
    for cap in [1usize, 2, 3] {
        let service = MappingService::new().with_max_in_flight(cap);
        let reports = service.run_batch(job_suite(threads));
        assert_batch_matches(&reports, &solo, &format!("in-flight cap {cap}"));
    }
}

#[test]
fn per_job_npn_stats_are_pinned_in_commit_order() {
    // The per-job NPN database counts hits/misses in that job's commit
    // order; a shared store behind it — cold or warmed by a *different*
    // circuit — must leave both the choice network and the deterministic
    // stats byte-identical to a private-cache build, at every thread count.
    for threads in [1, 2, 4, 8] {
        let params = MchConfig::lut_area().mch.with_threads(threads);
        for network in [adder(16), demo_adder_gt()] {
            let (solo_cn, solo_stats) = build_mch_with_stats(&network, &params);
            let shared = Arc::new(SharedNpnCache::new());
            // Warm the store with another circuit's classes first.
            let warmup = voter(9);
            let _ = build_mch_with_stats_shared(&warmup, &params, Some(&shared));
            let (shared_cn, shared_stats) =
                build_mch_with_stats_shared(&network, &params, Some(&shared));
            assert_eq!(
                solo_cn.network(),
                shared_cn.network(),
                "shared store changed the choice network at {threads} threads"
            );
            assert_eq!(
                solo_stats.timeless(),
                shared_stats.timeless(),
                "shared store changed per-job stats at {threads} threads"
            );
        }
    }
}

#[test]
fn nested_submission_from_a_pool_worker_runs_serially_and_matches() {
    // Satellite regression: a job submitting a sub-batch from *inside* a
    // pool worker must fall back to serial via the `is_worker` recursion
    // guard — completing (no deadlock) with byte-identical results.
    let threads = 4;
    let expected = solo_fingerprints(threads);
    let service = MappingService::new();
    let nested: Mutex<Option<Vec<JobReport>>> = Mutex::new(None);
    let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
        assert!(WorkerPool::is_worker(), "closure must run as a pool job");
        let reports = service.run_batch(job_suite(threads));
        *nested.lock().unwrap_or_else(PoisonError::into_inner) = Some(reports);
    });
    WorkerPool::global().run_with(vec![job], || {});
    let reports = nested
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .expect("nested batch must complete");
    assert_batch_matches(&reports, &expected, "nested submission");
}
