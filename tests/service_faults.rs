//! Chaos suite for the batched mapping service (per-job fault isolation).
//!
//! Compiled only with `--features fault-injection`. Run it at both thread
//! counts (the CI bench-service-smoke job does):
//!
//! ```sh
//! MCH_THREADS=1 cargo test --features fault-injection --test service_faults -- --test-threads=1
//! MCH_THREADS=4 cargo test --features fault-injection --test service_faults -- --test-threads=1
//! ```
//!
//! Contract: an injected fault — at the service's own `service::submit` /
//! `service::job_boundary` boundaries or at any in-flow site — surfaces as
//! **that job's** structured `FlowError::WorkerPanic`; sibling jobs in the
//! same batch and a follow-up batch byte-match pristine baselines; no
//! deadlock; the pool and the service stay reusable.
#![cfg(feature = "fault-injection")]

use mch::benchmarks::{adder, demo_adder_gt};
use mch::core::{FlowError, Job, JobReport, MappingService, MchConfig};
use mch::io::write_lut_blif;
use mch::logic::failpoint;
use mch::techlib::LutLibrary;
use std::sync::{Mutex, PoisonError};

/// Serializes chaos tests against each other: the failpoint registry is
/// process-global.
static GATE: Mutex<()> = Mutex::new(());

/// Runs `body` with the registry gate held and the expected injected panics
/// silenced; always disarms afterwards, even if `body` itself panics.
fn with_chaos(body: impl FnOnce()) {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with(failpoint::PANIC_PREFIX));
        if !injected {
            eprintln!("{info}");
        }
    }));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    failpoint::disarm();
    std::panic::set_hook(prev_hook);
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
}

/// The thread counts exercised: the `MCH_THREADS` environment override (the
/// CI matrix axis) plus the fixed 1-vs-4 pair.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 4];
    if let Ok(env) = std::env::var("MCH_THREADS") {
        if let Ok(t) = env.parse::<usize>() {
            if !counts.contains(&t) {
                counts.push(t);
            }
        }
    }
    counts
}

/// A three-job LUT batch: one batch-threshold-clearing circuit flanked by
/// two small ones (fresh `Job` values each call).
fn batch(threads: usize) -> Vec<Job> {
    let lut = LutLibrary::k6();
    vec![
        Job::lut(
            "small-a",
            demo_adder_gt(),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::lut(
            "big",
            adder(16),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
        Job::lut(
            "small-b",
            demo_adder_gt(),
            lut,
            MchConfig::lut_area().with_threads(threads),
        ),
    ]
}

fn bytes_of(report: &JobReport) -> String {
    let out = report
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("job {} failed: {e}", report.name));
    let r = out.as_lut().expect("lut job");
    assert!(r.verified, "job {} must verify", report.name);
    write_lut_blif(&r.netlist)
}

/// Pristine per-job baselines: each job solo on a fresh service.
fn baselines(threads: usize) -> Vec<String> {
    batch(threads)
        .into_iter()
        .map(|job| bytes_of(&MappingService::new().run(job)))
        .collect()
}

fn assert_worker_panic(report: &JobReport, site: &str) {
    match &report.outcome {
        Err(FlowError::WorkerPanic { message }) => assert!(
            message.starts_with(failpoint::PANIC_PREFIX) && message.contains(site),
            "job {}: wrong payload for {site}: {message}",
            report.name
        ),
        Err(other) => panic!("job {}: expected WorkerPanic for {site}, got {other}", report.name),
        Ok(_) => panic!("job {}: failpoint {site} did not fire", report.name),
    }
}

/// The service's own boundary failpoints, fired surgically at the second job
/// of a serialised batch: that job alone reports the structured error, its
/// siblings and a follow-up batch on the same service byte-match pristine
/// baselines.
#[test]
fn service_failpoints_fault_one_job_and_spare_siblings() {
    with_chaos(|| {
        for threads in thread_counts() {
            let pristine = baselines(threads);
            for site in ["service::submit", "service::job_boundary"] {
                // max_in_flight = 1 serialises job execution, so hit index 1
                // is deterministically the second submitted job.
                let service = MappingService::new().with_max_in_flight(1);
                failpoint::arm_exact(site, &[1]);
                let reports = service.run_batch(batch(threads));
                failpoint::disarm();
                assert_worker_panic(&reports[1], site);
                assert_eq!(bytes_of(&reports[0]), pristine[0], "{site}: sibling 0");
                assert_eq!(bytes_of(&reports[2]), pristine[2], "{site}: sibling 2");
                // The service and pool stay reusable: a follow-up batch is
                // pristine byte for byte.
                let followup = service.run_batch(batch(threads));
                for (report, want) in followup.iter().zip(&pristine) {
                    assert_eq!(&bytes_of(report), want, "{site}: follow-up batch");
                }
                let stats = service.stats();
                assert_eq!(stats.jobs_failed, 1, "{site}: exactly one job fails");
                assert_eq!(stats.jobs_succeeded, 5, "{site}: five jobs survive");
            }
        }
    });
}

/// A fault injected into a *concurrent* batch: scheduling decides which job
/// claims the firing hit, but exactly one job fails and every surviving job
/// byte-matches its pristine baseline.
#[test]
fn concurrent_batch_contains_the_fault_to_exactly_one_job() {
    with_chaos(|| {
        for threads in thread_counts() {
            let pristine = baselines(threads);
            for site in ["service::submit", "npn::commit"] {
                let service = MappingService::new();
                failpoint::arm_exact(site, &[0]);
                let reports = service.run_batch(batch(threads));
                failpoint::disarm();
                let failures: Vec<&JobReport> =
                    reports.iter().filter(|r| r.outcome.is_err()).collect();
                assert_eq!(failures.len(), 1, "{site}: exactly one job must fail");
                assert_worker_panic(failures[0], site);
                for (i, report) in reports.iter().enumerate() {
                    if report.outcome.is_ok() {
                        assert_eq!(
                            bytes_of(report),
                            pristine[i],
                            "{site}: surviving sibling {i} diverged"
                        );
                    }
                }
                let followup = service.run_batch(batch(threads));
                for (report, want) in followup.iter().zip(&pristine) {
                    assert_eq!(&bytes_of(report), want, "{site}: follow-up batch");
                }
            }
        }
    });
}

/// Seeded density sweeps over every failpoint at once, against full batches:
/// every report comes back (no deadlock), failures are structured, and the
/// service serves pristine byte-identical batches afterwards.
#[test]
fn seeded_chaos_sweep_over_batches_never_deadlocks_or_corrupts() {
    with_chaos(|| {
        for threads in thread_counts() {
            let pristine = baselines(threads);
            let service = MappingService::new();
            for seed in 0..4 {
                failpoint::arm(seed, 0.02);
                let reports = service.run_batch(batch(threads));
                failpoint::disarm();
                assert_eq!(reports.len(), 3, "every job must report back");
                for (i, report) in reports.iter().enumerate() {
                    match &report.outcome {
                        Ok(_) => assert_eq!(
                            bytes_of(report),
                            pristine[i],
                            "seed {seed}: surviving job {i} diverged"
                        ),
                        Err(e) => assert!(
                            matches!(e, FlowError::WorkerPanic { .. }),
                            "seed {seed}: non-structured error: {e}"
                        ),
                    }
                }
                let recovered = service.run_batch(batch(threads));
                for (report, want) in recovered.iter().zip(&pristine) {
                    assert_eq!(
                        &bytes_of(report),
                        want,
                        "seed {seed} at {threads} threads corrupted later batches"
                    );
                }
            }
        }
    });
}

/// Worker deaths under a live batch are absorbed by the pool (lazy respawn,
/// coordinator help-drain): no job fails, every byte matches.
#[test]
fn worker_deaths_are_invisible_to_batched_results() {
    with_chaos(|| {
        for threads in thread_counts() {
            let pristine = baselines(threads);
            let service = MappingService::new();
            failpoint::arm_exact("pool::worker", &[0, 1]);
            let reports = service.run_batch(batch(threads));
            failpoint::disarm();
            for (report, want) in reports.iter().zip(&pristine) {
                assert_eq!(
                    &bytes_of(report),
                    want,
                    "worker respawn changed a batched result at {threads} threads"
                );
            }
        }
    });
}

/// The warm-start cache failpoints (`cache::prepared_hit`,
/// `cache::prepared_insert`): a fault at either site is contained *inside*
/// the cache wrappers — the job does not fail, it silently falls back to a
/// cold, byte-identical run, and the cache stays coherent for later jobs on
/// the same service.
#[test]
fn cache_failpoint_faults_degrade_to_cold_byte_identical_runs() {
    with_chaos(|| {
        for threads in thread_counts() {
            let lut = LutLibrary::k6();
            let variants: Vec<MchConfig> = vec![
                MchConfig::lut_area().with_threads(threads),
                MchConfig::lut_area().with_threads(threads).with_area_rounds(4),
                MchConfig::lut_area().with_threads(threads).with_exact_area(true),
            ];
            // Cold per-variant references from a warm-start-disabled service.
            let reference: Vec<String> = variants
                .iter()
                .map(|cfg| {
                    let service = MappingService::new().with_prepared_capacity(0);
                    bytes_of(&service.run(Job::lut("cold", demo_adder_gt(), lut, cfg.clone())))
                })
                .collect();
            for site in ["cache::prepared_hit", "cache::prepared_insert"] {
                for hit in [0u64, 1] {
                    let service = MappingService::new();
                    failpoint::arm_exact(site, &[hit]);
                    let report = service.run(Job::sweep(
                        "sweep",
                        demo_adder_gt(),
                        mch::core::JobKind::LutMch(lut),
                        variants.clone(),
                    ));
                    failpoint::disarm();
                    let out = report
                        .outcome
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{site}[{hit}]: sweep must not fail: {e}"));
                    let sweep = out.as_sweep().expect("sweep output");
                    assert_eq!(sweep.len(), variants.len());
                    for (variant_report, want) in sweep.iter().zip(&reference) {
                        assert_eq!(
                            &bytes_of(variant_report),
                            want,
                            "{site}[{hit}] at {threads} threads: variant {} diverged",
                            variant_report.name
                        );
                    }
                    // The cache stays coherent: an unfaulted follow-up sweep
                    // on the same service matches byte for byte and the
                    // service counters show no failed jobs.
                    let followup = service.run(Job::sweep(
                        "followup",
                        demo_adder_gt(),
                        mch::core::JobKind::LutMch(lut),
                        variants.clone(),
                    ));
                    let followup_out = followup.outcome.expect("follow-up sweep failed");
                    for (variant_report, want) in followup_out
                        .as_sweep()
                        .expect("sweep output")
                        .iter()
                        .zip(&reference)
                    {
                        assert_eq!(
                            &bytes_of(variant_report),
                            want,
                            "{site}[{hit}] at {threads} threads: follow-up variant diverged"
                        );
                    }
                    let stats = service.stats();
                    assert_eq!(stats.jobs_failed, 0, "{site}[{hit}]: no job may fail");
                    assert_eq!(stats.jobs_succeeded, 2);
                }
            }
        }
    });
}
