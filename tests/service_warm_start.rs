//! Warm-start determinism battery: sweep jobs and the prepared-flow cache.
//!
//! The contract: every warm-started result — a sweep variant reusing a
//! cached choice network and prepared cover, or a batch job hitting an
//! artifact another job inserted — is **byte-identical** to a cold solo run
//! of the same job, at every thread count, for every batch permutation, and
//! in every cache state (cold, warm, evicted, disabled). Budgets compose:
//! a budgeted sweep degrades exactly like its budgeted solo runs.
//!
//! The suites below sweep threads {1, 2, 4, 8} for the LUT path and exercise
//! the ASIC and fused paths alongside; `tests/service_faults.rs` adds the
//! fault-composition leg (cache failpoints → cold byte-identical fallback).

use mch::benchmarks::{adder, demo_adder_gt, voter};
use mch::core::{
    CutCost, FlowBudget, Job, JobKind, JobOutput, JobReport, MappingService, MchConfig,
};
use mch::io::{write_lut_blif, write_verilog};
use mch::techlib::{asap7_lite, Library, LutLibrary};

/// The thread counts the determinism gate sweeps (the ISSUE's contract).
fn thread_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// A LUT parameter sweep sharing one choice construction: the variants vary
/// only mapper-side knobs (recovery rounds, exact area, cut ranking), so all
/// of them key to the same prepared flow.
fn lut_variants(threads: usize) -> Vec<MchConfig> {
    let base = MchConfig::lut_area().with_threads(threads);
    let mut structural = base.clone();
    structural.cut_ranking = CutCost::Structural;
    let mut depth = base.clone().with_area_rounds(2);
    depth.cut_ranking = CutCost::Depth;
    vec![
        base.clone(),
        base.clone().with_area_rounds(0),
        base.clone().with_area_rounds(4),
        base.clone().with_exact_area(true),
        base.clone().with_area_rounds(6).with_exact_area(true),
        structural,
        depth,
        base.with_area_rounds(1),
    ]
}

/// An ASIC sweep over one choice construction (same objective, different
/// recovery settings).
fn asic_variants(threads: usize) -> Vec<MchConfig> {
    let base = MchConfig::balanced().with_threads(threads);
    vec![
        base.clone(),
        base.clone().with_area_rounds(0),
        base.clone().with_area_rounds(4),
        base.with_exact_area(true),
    ]
}

/// Serialises everything deterministic about a job output: netlist bytes,
/// verification and the degradation trace; sweeps serialise every variant.
fn out_fingerprint(out: &JobOutput) -> String {
    match out {
        JobOutput::Asic(r) => {
            assert!(r.verified, "ASIC result did not verify");
            format!("{}\n{:?}", write_verilog(&r.netlist, &asap7_lite()), r.degradation)
        }
        JobOutput::Lut(r) => {
            assert!(r.verified, "LUT result did not verify");
            format!("{}\n{:?}", write_lut_blif(&r.netlist), r.degradation)
        }
        JobOutput::Sweep(reports) => reports
            .iter()
            .map(report_fingerprint)
            .collect::<Vec<_>>()
            .join("\n--\n"),
    }
}

fn report_fingerprint(report: &JobReport) -> String {
    let out = report
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("job {} failed: {e}", report.name));
    out_fingerprint(out)
}

/// A service with warm starts disabled: the cold reference — byte-for-byte
/// the pre-warm-start behaviour.
fn cold_service() -> MappingService {
    MappingService::new().with_prepared_capacity(0)
}

/// The cold reference for a sweep: each variant as its own solo job on a
/// cache-disabled service, serialised exactly like a sweep output.
fn cold_sweep_reference(
    network: &mch::core::Network,
    kind: &JobKind,
    variants: &[MchConfig],
) -> String {
    variants
        .iter()
        .map(|cfg| {
            let job = match kind {
                JobKind::AsicMch(lib) => {
                    Job::asic("cold", network.clone(), lib.clone(), cfg.clone())
                }
                JobKind::LutMch(lut) => Job::lut("cold", network.clone(), *lut, cfg.clone()),
                JobKind::LutFusedMch(lut, lib) => {
                    Job::lut_fused("cold", network.clone(), *lut, lib.clone(), cfg.clone())
                }
                JobKind::Sweep(..) => unreachable!("references are per-variant"),
            };
            report_fingerprint(&cold_service().run(job))
        })
        .collect::<Vec<_>>()
        .join("\n--\n")
}

#[test]
fn lut_sweeps_match_cold_solo_runs_at_every_thread_count_and_cache_state() {
    let network = adder(12);
    let kind = JobKind::LutMch(LutLibrary::k6());
    for threads in thread_counts() {
        let variants = lut_variants(threads);
        let expected = cold_sweep_reference(&network, &kind, &variants);
        // Cache states: cold (fresh default service), warm (same sweep again
        // on the now-populated cache), evicted (capacity too small to retain
        // anything), disabled (capacity zero).
        let service = MappingService::new();
        let first = service.run(Job::sweep(
            "sweep",
            network.clone(),
            kind.clone(),
            variants.clone(),
        ));
        assert_eq!(
            report_fingerprint(&first),
            expected,
            "cold-cache sweep diverged at {threads} threads"
        );
        let second = service.run(Job::sweep(
            "sweep-again",
            network.clone(),
            kind.clone(),
            variants.clone(),
        ));
        assert_eq!(
            report_fingerprint(&second),
            expected,
            "warm-cache sweep diverged at {threads} threads"
        );
        let stats = service.stats();
        assert!(
            stats.prepared_hits >= variants.len(),
            "a warm service must serve later variants from cache: {stats:?}"
        );
        assert!(stats.prepared_entries >= 1 && stats.prepared_bytes > 0);

        let evicting = MappingService::new().with_prepared_capacity(1);
        let evicted = evicting.run(Job::sweep(
            "sweep-evicted",
            network.clone(),
            kind.clone(),
            variants.clone(),
        ));
        assert_eq!(
            report_fingerprint(&evicted),
            expected,
            "evicting-cache sweep diverged at {threads} threads"
        );
        let estats = evicting.stats();
        assert!(estats.prepared_evictions >= 1, "1-byte cache must evict: {estats:?}");
        assert_eq!(estats.prepared_entries, 0);

        let disabled = cold_service().run(Job::sweep(
            "sweep-disabled",
            network.clone(),
            kind.clone(),
            variants,
        ));
        assert_eq!(
            report_fingerprint(&disabled),
            expected,
            "disabled-cache sweep diverged at {threads} threads"
        );
    }
}

#[test]
fn asic_and_fused_sweeps_match_cold_solo_runs() {
    let lib: Library = asap7_lite();
    let lut = LutLibrary::k6();
    for threads in [1, 4] {
        let network = demo_adder_gt();
        let asic_kind = JobKind::AsicMch(lib.clone());
        let variants = asic_variants(threads);
        let expected = cold_sweep_reference(&network, &asic_kind, &variants);
        let service = MappingService::new();
        let report = service.run(Job::sweep("asic-sweep", network.clone(), asic_kind, variants));
        assert_eq!(
            report_fingerprint(&report),
            expected,
            "ASIC sweep diverged at {threads} threads"
        );

        // The fused path builds two prepared covers (LUT + ASIC guide) per
        // variant; warm variants must still match their cold solo runs.
        let fused_kind = JobKind::LutFusedMch(lut, lib.clone());
        let fused_variants: Vec<MchConfig> = vec![
            MchConfig::lut_fusion().with_threads(threads),
            MchConfig::lut_fusion().with_threads(threads).with_area_rounds(0),
            MchConfig::lut_fusion().with_threads(threads).with_exact_area(true),
        ];
        let fused_expected = cold_sweep_reference(&network, &fused_kind, &fused_variants);
        let fused_report = service.run(Job::sweep(
            "fused-sweep",
            network.clone(),
            fused_kind,
            fused_variants,
        ));
        assert_eq!(
            report_fingerprint(&fused_report),
            fused_expected,
            "fused sweep diverged at {threads} threads"
        );
    }
}

#[test]
fn batch_permutations_with_coincidentally_identical_jobs_stay_byte_identical() {
    // A batch mixing a sweep, two *identical* plain jobs (same circuit, same
    // config — the coincidental warm-hit case) and an unrelated ASIC job.
    // Every permutation must reproduce the cold solo bytes of every job.
    let threads = 2;
    let lut = LutLibrary::k6();
    let lib: Library = asap7_lite();
    let sweep_variants = &lut_variants(threads)[..3];
    let make_jobs = || -> Vec<Job> {
        vec![
            Job::sweep(
                "sweep",
                adder(12),
                JobKind::LutMch(lut),
                sweep_variants.to_vec(),
            ),
            Job::lut("twin-a", demo_adder_gt(), lut, MchConfig::lut_area().with_threads(threads)),
            Job::lut("twin-b", demo_adder_gt(), lut, MchConfig::lut_area().with_threads(threads)),
            Job::asic(
                "asic",
                voter(9),
                lib.clone(),
                MchConfig::balanced().with_threads(threads),
            ),
        ]
    };
    let expected: Vec<String> = make_jobs()
        .into_iter()
        .map(|job| report_fingerprint(&cold_service().run(job)))
        .collect();
    let orders: [[usize; 4]; 3] = [[0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]];
    for order in orders {
        let service = MappingService::new();
        let mut slots: Vec<Option<Job>> = make_jobs().into_iter().map(Some).collect();
        let jobs: Vec<Job> = order.iter().map(|&i| slots[i].take().expect("once")).collect();
        let reports = service.run_batch(jobs);
        for (report, &i) in reports.iter().zip(&order) {
            assert_eq!(
                report_fingerprint(report),
                expected[i],
                "batch order {order:?}: job {} diverged from its cold solo run",
                report.name
            );
        }
    }
    // Serialised execution pins the coincidental warm-hit: the second twin
    // must find the artifact the first one inserted.
    let serial = MappingService::new().with_max_in_flight(1);
    let reports = serial.run_batch(make_jobs());
    for (report, want) in reports.iter().zip(&expected) {
        assert_eq!(&report_fingerprint(report), want, "serialised batch diverged");
    }
    let stats = serial.stats();
    assert!(
        stats.prepared_hits >= sweep_variants.len() - 1 + 1,
        "sweep tail variants and the twin job must warm-hit: {stats:?}"
    );
}

#[test]
fn budgeted_sweeps_degrade_exactly_like_budgeted_solo_runs() {
    // Budget composition: the warm-start path keys prepared flows on the
    // *post-degradation* config and post-shrink cut limit, so a budgeted
    // sweep must byte-match budgeted cold solo runs — degradation traces
    // included (they are part of the fingerprint).
    let network = adder(12);
    let lut = LutLibrary::k6();
    let budget = FlowBudget::unlimited().with_max_cut_arena_slots(network.len() * 2);
    for threads in [1, 4] {
        let variants = &lut_variants(threads)[..4];
        let expected: Vec<String> = variants
            .iter()
            .map(|cfg| {
                let job = Job::lut("cold", network.clone(), lut, cfg.clone())
                    .with_budget(budget.clone());
                report_fingerprint(&cold_service().run(job))
            })
            .collect();
        let service = MappingService::new();
        // An unbudgeted sweep first: its cached artifacts must not leak into
        // the budgeted run (different post-shrink cut limit → different key).
        let _ = service.run(Job::sweep(
            "unbudgeted",
            network.clone(),
            JobKind::LutMch(lut),
            variants.to_vec(),
        ));
        let budgeted = service.run(
            Job::sweep(
                "budgeted",
                network.clone(),
                JobKind::LutMch(lut),
                variants.to_vec(),
            )
            .with_budget(budget.clone()),
        );
        let out = budgeted.outcome.expect("budgeted sweep failed");
        let reports = out.as_sweep().expect("sweep output");
        assert_eq!(reports.len(), variants.len());
        for (report, want) in reports.iter().zip(&expected) {
            assert_eq!(
                &report_fingerprint(report),
                want,
                "budgeted sweep variant {} diverged at {threads} threads",
                report.name
            );
        }
    }
}

#[test]
fn warm_start_cache_telemetry_is_wired_through_service_stats() {
    let service = MappingService::new();
    assert_eq!(service.stats().prepared_entries, 0);
    let variants = lut_variants(1);
    let n = variants.len();
    let _ = service.run(Job::sweep(
        "sweep",
        demo_adder_gt(),
        JobKind::LutMch(LutLibrary::k6()),
        variants,
    ));
    let stats = service.stats();
    assert_eq!(stats.jobs_succeeded, 1);
    assert_eq!(stats.prepared_misses, 1, "only the first variant builds cold: {stats:?}");
    assert_eq!(stats.prepared_hits, n - 1, "every later variant must hit: {stats:?}");
    assert_eq!(stats.prepared_entries, 1);
    assert!(stats.prepared_bytes > 0);
    assert_eq!(stats.prepared_evictions, 0);
}
